package faultlab

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim/snaptest"
)

// forkTestConfig is the differential grid's scenario: small enough to run
// dozens of times, but with tracing, resilience, short leases, and the
// reconcile loop all on so every stateful layer participates in the
// snapshot.
func forkTestConfig() ChaosConfig {
	return ChaosConfig{
		Sites:          4,
		Target:         2,
		CPUPerSite:     0.5,
		Horizon:        90 * time.Minute,
		Converge:       15 * time.Minute,
		Refresh:        2 * time.Minute,
		JobEvery:       5 * time.Minute,
		AuditEvery:     5 * time.Minute,
		Trace:          true,
		Lease:          30 * time.Minute,
		ReconcileEvery: 10 * time.Minute,
		Resilience:     true,
	}
}

// serializeReport renders everything a chaos run observably produced —
// summary table, schedule, injector trace, violations, scalar outcomes,
// resilience counters, and the full JSONL trace stream — so the
// differential harness compares forked and cold runs byte for byte.
func serializeReport(t *testing.T, rep *Report) []byte {
	t.Helper()
	var b bytes.Buffer
	fmt.Fprintf(&b, "== seed=%d profile=%s ==\n", rep.Seed, rep.Profile)
	if rep.Schedule != nil {
		b.WriteString(rep.Schedule.String())
	}
	for _, ln := range rep.Trace {
		fmt.Fprintf(&b, "inj %s\n", ln)
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(&b, "violation %s\n", v)
	}
	b.WriteString(rep.Summary)
	fmt.Fprintf(&b, "availability=%.6f lapses=%d\n", rep.Availability, rep.LeaseLapses)
	if rep.Resilience != nil {
		fmt.Fprintf(&b, "resilience=%+v\n", *rep.Resilience)
	}
	if rep.Tracer != nil {
		if err := rep.Tracer.WriteJSONL(&b); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
	}
	return b.Bytes()
}

// TestForkVsColdChaos is the tentpole gate: for every seed in the grid,
// running all profiles off one warm fork must be byte-identical — report,
// summary, violations, and JSONL trace stream — to cold-building each
// (seed, profile) run from scratch. Run under -race in CI.
func TestForkVsColdChaos(t *testing.T) {
	cfg := forkTestConfig()
	profiles := Profiles()
	cold := func(seed int64) []byte {
		var b bytes.Buffer
		for _, p := range profiles {
			b.Write(serializeReport(t, RunChaos(seed, p, cfg)))
		}
		return b.Bytes()
	}
	forked := func(seed int64) []byte {
		var b bytes.Buffer
		// Serialize inside the visit callback: the shared tracer is only
		// valid for a given timeline until the next fork rewinds it.
		ForkedSeedRun(seed, profiles, cfg, func(rep *Report) {
			b.Write(serializeReport(t, rep))
		})
		return b.Bytes()
	}
	n := 20
	if testing.Short() {
		n = 4
	}
	snaptest.Diff(t, "chaos", snaptest.Seeds(1, n), cold, forked)
}

// TestForkRewindsJobRngExactly pins the sweep rng-drift regression: the
// job-stream rng (and every other rng in the stack) must rewind to its
// exact captured position on each fork, so running the SAME profile twice
// off one snapshot yields byte-identical reports — and both match cold.
func TestForkRewindsJobRngExactly(t *testing.T) {
	cfg := forkTestConfig()
	p, _ := ProfileByName("mixed")
	for _, seed := range snaptest.Seeds(1, 8) {
		var runs [][]byte
		ForkedSeedRun(seed, []Profile{p, p}, cfg, func(rep *Report) {
			runs = append(runs, serializeReport(t, rep))
		})
		first, second := runs[0], runs[1]
		if !bytes.Equal(first, second) {
			t.Fatalf("seed %d: second fork of the same profile diverged (rng drift):\n%s",
				seed, snaptest.Describe(first, second))
		}
		coldRep := serializeReport(t, RunChaos(seed, p, cfg))
		if !bytes.Equal(coldRep, first) {
			t.Fatalf("seed %d: forked run diverged from cold:\n%s",
				seed, snaptest.Describe(coldRep, first))
		}
	}
}

// TestChaosSnapshotPurity is the scenario-level purity gate: taking
// snapshots — at the arm point and again mid-run — without ever forking
// them must leave the run byte-identical to one that never snapshotted.
func TestChaosSnapshotPurity(t *testing.T) {
	cfg := forkTestConfig()
	p, _ := ProfileByName("crashes")
	for _, seed := range snaptest.Seeds(1, 5) {
		plain := serializeReport(t, RunChaos(seed, p, cfg))

		c := newChaosRun(seed, cfg)
		_ = c.f.Eng.Snapshot()
		c.arm(Generate(seed, p, cfg.SiteNames(), cfg.Horizon))
		c.f.Eng.RunUntil(cfg.Horizon / 2)
		_ = c.f.Eng.Snapshot()
		snapped := serializeReport(t, c.finish())

		if !bytes.Equal(plain, snapped) {
			t.Fatalf("seed %d: snapshotting perturbed the run:\n%s",
				seed, snaptest.Describe(plain, snapped))
		}
	}
}

// TestForkedSweepMatchesColdSweep pins the Sweep rewiring: the warm-fork
// sweep must render the same aggregate as running every cell cold.
func TestForkedSweepMatchesColdSweep(t *testing.T) {
	cfg := forkTestConfig()
	profiles := Profiles()
	coldRes := &SweepResult{}
	for s := int64(1); s <= 3; s++ {
		for _, p := range profiles {
			coldRes.Add(RunChaos(s, p, cfg))
		}
	}
	warmRes := Sweep(1, 3, profiles, cfg)
	if coldRes.String() != warmRes.String() {
		t.Fatalf("forked sweep diverged from cold sweep:\ncold:\n%s\nwarm:\n%s", coldRes, warmRes)
	}
	if coldRes.AvailabilitySum != warmRes.AvailabilitySum || coldRes.LeaseLapses != warmRes.LeaseLapses {
		t.Fatalf("forked sweep aggregates diverged: cold=%+v warm=%+v", coldRes, warmRes)
	}
}
