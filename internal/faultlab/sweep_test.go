package faultlab

import (
	"testing"
	"time"
)

// The acceptance sweep: 50 seeds × all 3 built-in profiles, every
// invariant holding on every run. A failure here prints the minimal
// (seed, profile) repro.
func TestSweepFiftySeedsAllProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is the long acceptance test")
	}
	cfg := DefaultChaosConfig()
	cfg.Horizon = 4 * time.Hour // full severity, shorter soak per run
	res := Sweep(1, 50, Profiles(), cfg)
	if res.Runs != 150 {
		t.Fatalf("Runs = %d, want 150", res.Runs)
	}
	if !res.OK() {
		t.Fatalf("sweep found violations:\n%s", res)
	}
}
