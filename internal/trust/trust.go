// Package trust is the reputation/collateral layer that prices
// byzantine brokers out of a SHARP federation. It has two halves:
//
//   - Bank: a per-authority collateral ledger. A broker posts a deposit
//     before it may sell claims against the site; detected misbehaviour
//     (replayed tickets, overselling surfacing as redeem conflicts)
//     slashes the deposit. A broker whose collateral is exhausted is no
//     longer eligible to sell at that site, so sustained fraud starves
//     the fraudster rather than the service.
//
//   - Scoreboard: decayed per-broker redeem-success scores kept by
//     service managers. Every deploy outcome (did the ticket this
//     broker sold actually redeem into a lease?) updates an EWMA;
//     broker selection is weighted by score, so honest-majority
//     federations converge onto honest brokers.
//
// Everything is deterministic: accounts and scores are stored alongside
// an insertion-order slice, never iterated via map range, so float
// accumulation order and rendered output are byte-identical across
// runs, worker counts, and snapshot forks.
package trust

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Ledger and scoreboard errors.
var (
	// ErrNoAccount reports a slash against a broker that never posted
	// collateral — the caller should have refused the sale instead.
	ErrNoAccount = errors.New("trust: broker has no collateral account")
	// ErrBadAmount reports a non-positive deposit or slash amount.
	ErrBadAmount = errors.New("trust: amount must be positive")
	// ErrNoBroker reports a score report or lookup with an empty broker
	// name.
	ErrNoBroker = errors.New("trust: empty broker name")
)

// account is one broker's collateral position at one bank. The
// conservation invariant deposited == held + slashed is checked by
// CheckConservation and audited by faultlab's invariant sweep.
type account struct {
	name      string
	deposited float64
	held      float64
	slashed   float64
}

// SlashEvent records one collateral seizure, for evidence tables and
// audits.
type SlashEvent struct {
	Broker string
	Amount float64
	Reason string
}

// Bank is one authority's collateral ledger. Not safe for concurrent
// use; in the simulation all calls happen on the engine goroutine.
type Bank struct {
	// Site names the authority this ledger belongs to (label only).
	Site string

	accounts map[string]*account
	order    []string // account creation order: deterministic iteration
	events   []SlashEvent
}

// NewBank creates an empty ledger for one site authority.
func NewBank(site string) *Bank {
	return &Bank{Site: site, accounts: make(map[string]*account)}
}

// Deposit posts collateral for a broker, creating its account on first
// use.
func (b *Bank) Deposit(broker string, amount float64) error {
	if broker == "" {
		return ErrNoBroker
	}
	if amount <= 0 || math.IsNaN(amount) {
		return fmt.Errorf("%w: deposit %v", ErrBadAmount, amount)
	}
	ac, ok := b.accounts[broker]
	if !ok {
		ac = &account{name: broker}
		b.accounts[broker] = ac
		b.order = append(b.order, broker)
	}
	ac.deposited += amount
	ac.held += amount
	return nil
}

// Slash seizes up to amount from the broker's held collateral and
// returns how much was actually taken (a fully drained account slashes
// zero — the broker is already priced out). The event is recorded
// either way so evidence tables can show repeat offenses.
func (b *Bank) Slash(broker string, amount float64, reason string) (float64, error) {
	if broker == "" {
		return 0, ErrNoBroker
	}
	if amount <= 0 || math.IsNaN(amount) {
		return 0, fmt.Errorf("%w: slash %v", ErrBadAmount, amount)
	}
	ac, ok := b.accounts[broker]
	if !ok {
		return 0, fmt.Errorf("%w: %q at %q", ErrNoAccount, broker, b.Site)
	}
	take := math.Min(amount, ac.held)
	ac.held -= take
	ac.slashed += take
	b.events = append(b.events, SlashEvent{Broker: broker, Amount: take, Reason: reason})
	return take, nil
}

// Held reports a broker's current collateral (0 for unknown brokers).
func (b *Bank) Held(broker string) float64 {
	if ac, ok := b.accounts[broker]; ok {
		return ac.held
	}
	return 0
}

// Slashed reports how much of a broker's collateral has been seized.
func (b *Bank) Slashed(broker string) float64 {
	if ac, ok := b.accounts[broker]; ok {
		return ac.slashed
	}
	return 0
}

// Deposited reports a broker's lifetime deposits.
func (b *Bank) Deposited(broker string) float64 {
	if ac, ok := b.accounts[broker]; ok {
		return ac.deposited
	}
	return 0
}

// Brokers returns account names in creation order.
func (b *Bank) Brokers() []string {
	return append([]string(nil), b.order...)
}

// Events returns a copy of the slash log in occurrence order.
func (b *Bank) Events() []SlashEvent {
	return append([]SlashEvent(nil), b.events...)
}

// TotalHeld sums held collateral in account-creation order.
func (b *Bank) TotalHeld() float64 {
	var t float64
	for _, n := range b.order {
		t += b.accounts[n].held
	}
	return t
}

// TotalSlashed sums seized collateral in account-creation order.
func (b *Bank) TotalSlashed() float64 {
	var t float64
	for _, n := range b.order {
		t += b.accounts[n].slashed
	}
	return t
}

// TotalDeposited sums lifetime deposits in account-creation order.
func (b *Bank) TotalDeposited() float64 {
	var t float64
	for _, n := range b.order {
		t += b.accounts[n].deposited
	}
	return t
}

// CheckConservation verifies deposited == held + slashed for every
// account (the ledger mints and burns nothing). Returns the first
// violated account, nil when the ledger balances.
func (b *Bank) CheckConservation() error {
	for _, n := range b.order {
		ac := b.accounts[n]
		if math.Abs(ac.deposited-(ac.held+ac.slashed)) > 1e-9 {
			return fmt.Errorf("trust: conservation violated for %q at %q: deposited %.9f != held %.9f + slashed %.9f",
				n, b.Site, ac.deposited, ac.held, ac.slashed)
		}
	}
	return nil
}

// BrokerScore is one scoreboard row.
type BrokerScore struct {
	Broker  string
	Score   float64
	Reports int
}

// Scoreboard keeps a service manager's decayed per-broker
// redeem-success scores. A broker starts at the 0.5 prior; each
// reported outcome folds in as score = decay*score + (1-decay)*v with
// v 1 for success, 0 for failure. Scores therefore live in [0, 1] and
// converge geometrically toward a broker's recent success rate.
type Scoreboard struct {
	decay   float64
	scores  map[string]float64
	reports map[string]int
	order   []string // first-report order: deterministic iteration
}

// DefaultScoreDecay is the history weight used when NewScoreboard is
// given a value outside (0, 1).
const DefaultScoreDecay = 0.8

// scorePrior is where an unseen broker starts: agnostic.
const scorePrior = 0.5

// NewScoreboard creates a scoreboard with the given history decay
// (clamped to DefaultScoreDecay when outside (0, 1)).
func NewScoreboard(decay float64) *Scoreboard {
	if !(decay > 0 && decay < 1) {
		decay = DefaultScoreDecay
	}
	return &Scoreboard{
		decay:   decay,
		scores:  make(map[string]float64),
		reports: make(map[string]int),
	}
}

// ReportOutcome folds one deploy outcome for a broker into its score.
func (s *Scoreboard) ReportOutcome(broker string, ok bool) error {
	if broker == "" {
		return ErrNoBroker
	}
	sc, seen := s.scores[broker]
	if !seen {
		sc = scorePrior
		s.order = append(s.order, broker)
	}
	v := 0.0
	if ok {
		v = 1.0
	}
	s.scores[broker] = s.decay*sc + (1-s.decay)*v
	s.reports[broker]++
	return nil
}

// Score returns a broker's current score (the prior for unseen
// brokers).
func (s *Scoreboard) Score(broker string) float64 {
	if sc, ok := s.scores[broker]; ok {
		return sc
	}
	return scorePrior
}

// Reports returns how many outcomes have been folded in for a broker.
func (s *Scoreboard) Reports(broker string) int { return s.reports[broker] }

// Snapshot returns all rows sorted by broker name (stable render
// order regardless of report order).
func (s *Scoreboard) Snapshot() []BrokerScore {
	out := make([]BrokerScore, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, BrokerScore{Broker: n, Score: s.scores[n], Reports: s.reports[n]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Broker < out[j].Broker })
	return out
}

// CheckBounds verifies every score is a number in [0, 1] — the EWMA
// can produce nothing else, so a violation means corrupted state.
func (s *Scoreboard) CheckBounds() error {
	for _, n := range s.order {
		sc := s.scores[n]
		if math.IsNaN(sc) || sc < 0 || sc > 1 {
			return fmt.Errorf("trust: score out of bounds for %q: %v", n, sc)
		}
	}
	return nil
}
