package trust

import (
	"errors"
	"math"
	"testing"
)

func TestBankDepositSlashConservation(t *testing.T) {
	b := NewBank("siteA")
	if err := b.Deposit("hb0", 10); err != nil {
		t.Fatalf("deposit: %v", err)
	}
	if err := b.Deposit("byz0", 10); err != nil {
		t.Fatalf("deposit: %v", err)
	}
	took, err := b.Slash("byz0", 4, "replayed ticket")
	if err != nil || took != 4 {
		t.Fatalf("slash = %v, %v; want 4, nil", took, err)
	}
	// Slashing past the remaining collateral drains but never goes
	// negative.
	took, err = b.Slash("byz0", 100, "oversell conflict")
	if err != nil || took != 6 {
		t.Fatalf("overdraw slash = %v, %v; want 6, nil", took, err)
	}
	if h := b.Held("byz0"); h != 0 {
		t.Fatalf("held after drain = %v; want 0", h)
	}
	// A drained account keeps recording offenses but yields nothing.
	took, err = b.Slash("byz0", 1, "replayed ticket")
	if err != nil || took != 0 {
		t.Fatalf("drained slash = %v, %v; want 0, nil", took, err)
	}
	if got := len(b.Events()); got != 3 {
		t.Fatalf("events = %d; want 3", got)
	}
	if err := b.CheckConservation(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	if got, want := b.TotalDeposited(), 20.0; got != want {
		t.Fatalf("total deposited = %v; want %v", got, want)
	}
	if got, want := b.TotalHeld()+b.TotalSlashed(), 20.0; got != want {
		t.Fatalf("held+slashed = %v; want %v", got, want)
	}
}

func TestBankErrors(t *testing.T) {
	b := NewBank("siteA")
	if _, err := b.Slash("ghost", 1, "x"); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("slash unknown = %v; want ErrNoAccount", err)
	}
	if err := b.Deposit("hb0", 0); !errors.Is(err, ErrBadAmount) {
		t.Fatalf("zero deposit = %v; want ErrBadAmount", err)
	}
	if err := b.Deposit("hb0", -3); !errors.Is(err, ErrBadAmount) {
		t.Fatalf("negative deposit = %v; want ErrBadAmount", err)
	}
	if err := b.Deposit("", 1); !errors.Is(err, ErrNoBroker) {
		t.Fatalf("empty name deposit = %v; want ErrNoBroker", err)
	}
	if err := b.Deposit("hb0", 5); err != nil {
		t.Fatalf("deposit: %v", err)
	}
	if _, err := b.Slash("hb0", -1, "x"); !errors.Is(err, ErrBadAmount) {
		t.Fatalf("negative slash = %v; want ErrBadAmount", err)
	}
}

func TestScoreboardConvergence(t *testing.T) {
	s := NewScoreboard(0.8)
	if got := s.Score("unseen"); got != 0.5 {
		t.Fatalf("prior = %v; want 0.5", got)
	}
	for i := 0; i < 50; i++ {
		if err := s.ReportOutcome("honest", true); err != nil {
			t.Fatalf("report: %v", err)
		}
		if err := s.ReportOutcome("byz", false); err != nil {
			t.Fatalf("report: %v", err)
		}
	}
	if got := s.Score("honest"); got < 0.99 {
		t.Fatalf("honest score = %v; want ≥ 0.99", got)
	}
	if got := s.Score("byz"); got > 0.01 {
		t.Fatalf("byz score = %v; want ≤ 0.01", got)
	}
	if err := s.CheckBounds(); err != nil {
		t.Fatalf("bounds: %v", err)
	}
	if err := s.ReportOutcome("", true); !errors.Is(err, ErrNoBroker) {
		t.Fatalf("empty name report = %v; want ErrNoBroker", err)
	}
	rows := s.Snapshot()
	if len(rows) != 2 || rows[0].Broker != "byz" || rows[1].Broker != "honest" {
		t.Fatalf("snapshot order = %+v; want [byz honest]", rows)
	}
	if rows[0].Reports != 50 {
		t.Fatalf("reports = %d; want 50", rows[0].Reports)
	}
}

func TestScoreboardRecovers(t *testing.T) {
	// A broker that failed during an outage earns its way back: the EWMA
	// forgets geometrically.
	s := NewScoreboard(0.8)
	for i := 0; i < 20; i++ {
		_ = s.ReportOutcome("b", false)
	}
	low := s.Score("b")
	for i := 0; i < 20; i++ {
		_ = s.ReportOutcome("b", true)
	}
	if got := s.Score("b"); got <= low || got < 0.95 {
		t.Fatalf("recovered score = %v (from %v); want ≥ 0.95", got, low)
	}
}

func TestScoreboardDeterministicBytes(t *testing.T) {
	// Two scoreboards fed the same report sequence render identically —
	// the property the 20-seed sweep identity test leans on.
	run := func() []BrokerScore {
		s := NewScoreboard(0.7)
		seq := []struct {
			n  string
			ok bool
		}{{"b2", true}, {"b1", false}, {"b2", true}, {"b3", false}, {"b1", true}}
		for _, r := range seq {
			_ = s.ReportOutcome(r.n, r.ok)
		}
		return s.Snapshot()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("len %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] || math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			t.Fatalf("row %d: %+v != %+v", i, a[i], b[i])
		}
	}
}
