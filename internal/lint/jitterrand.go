package lint

import (
	"go/ast"
	"go/types"
)

// JitterrandAnalyzer forbids building resilience machinery as composite
// literals outside its own package. A jittered backoff is only
// deterministic when its jitter draws from an injected seeded stream on
// the engine clock; NewExecutor/NewRenewer/NewKit enforce exactly that
// (and panic on a nil source), while a literal &resilience.Executor{…}
// zero-values the unexported rand and engine fields — a retry loop that
// panics (or silently never jitters) deep inside a recovery path, the
// worst possible place to find out.
var JitterrandAnalyzer = &Analyzer{
	Name: "jitterrand",
	Doc:  "forbid composite-literal construction of resilience.Executor/Renewer/Kit; use the New* constructors (injected seeded rand, engine clock)",
	Run:  runJitterrand,
}

// resiliencePath is the guarded package; its own files (constructors,
// tests) legitimately build the literals.
const resiliencePath = "repro/internal/resilience"

var jitterrandGuarded = map[string]bool{
	"Executor": true,
	"Renewer":  true,
	"Kit":      true,
}

func runJitterrand(pass *Pass) {
	if pass.Pkg.Path == resiliencePath || pass.Pkg.Path == resiliencePath+"_test" {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := info.Types[lit]
			if !ok {
				return true
			}
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == nil || obj.Pkg().Path() != resiliencePath || !jitterrandGuarded[obj.Name()] {
				return true
			}
			pass.Reportf(lit.Pos(),
				"construct via resilience.New"+obj.Name()+" (injected seeded rand and engine clock)",
				"resilience.%s built as a composite literal carries no rand source for its jittered backoff", obj.Name())
			return true
		})
	}
}
