package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// directive is one parsed //gridlint:ignore comment.
//
// Form: //gridlint:ignore <analyzer> <reason...>
//
// The directive suppresses findings of the named analyzer on its own
// line (end-of-line comment) or on the line immediately below it
// (standalone comment line). The reason is mandatory: every suppression
// must leave an audit trail a reviewer can weigh.
type directive struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
}

const directivePrefix = "gridlint:ignore"

// directives extracts every gridlint directive from a package's
// comments. Malformed directives — unknown analyzer name, missing
// reason — are returned as findings so the build fails rather than the
// suppression silently not applying.
func directives(fset *token.FileSet, pkg *Package) ([]directive, []Finding) {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var dirs []directive
	var errs []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					errs = append(errs, Finding{
						Analyzer: "directive", Pos: pos,
						Message: "gridlint:ignore needs an analyzer name and a reason",
						Hint:    fmt.Sprintf("write //gridlint:ignore <analyzer> <reason>; analyzers: %s", analyzerNames()),
					})
				case !known[name]:
					errs = append(errs, Finding{
						Analyzer: "directive", Pos: pos,
						Message: fmt.Sprintf("gridlint:ignore names unknown analyzer %q", name),
						Hint:    "analyzers: " + analyzerNames(),
					})
				case reason == "":
					errs = append(errs, Finding{
						Analyzer: "directive", Pos: pos,
						Message: fmt.Sprintf("gridlint:ignore %s has no reason", name),
						Hint:    "suppressions must be justified: //gridlint:ignore " + name + " <reason>",
					})
				default:
					dirs = append(dirs, directive{
						File: pos.Filename, Line: pos.Line, Analyzer: name, Reason: reason,
					})
				}
			}
		}
	}
	return dirs, errs
}

func analyzerNames() string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
