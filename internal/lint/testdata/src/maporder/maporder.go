// Package maporder is gridlint corpus: order-sensitive effects inside
// map iteration are flagged; the collect/sort idiom and commutative
// bodies are not.
package maporder

import (
	"fmt"
	"sort"
)

// GoodSorted is the blessed collect-then-sort idiom: the in-loop append
// is redeemed by the sort.* call after the loop.
func GoodSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodCopy writes keyed by the range key: commutative, no finding.
func GoodCopy(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// GoodCount accumulates integers: addition over int is associative and
// commutative, so visit order cannot change the result.
func GoodCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// GoodKeyedFloat accumulates floats but into a slot keyed by the range
// key — each key visited exactly once, so it is a move, not a sum.
func GoodKeyedFloat(m map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range m {
		out[k] += v
	}
	return out
}

// GoodDelete removes entries while ranging: deletion is commutative.
func GoodDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out" accumulates in map iteration order`
	}
	return out
}

func BadEmit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println emits in map iteration order"
	}
}

func BadFloatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `floating-point accumulation into "total"`
	}
	return total
}

func BadFirstMatch(m map[string]int, target int) string {
	for k, v := range m {
		if v == target {
			return k // want "return of loop-dependent value from inside map iteration"
		}
	}
	return ""
}

type wire struct{}

func (wire) Send(string) {}

// BadSend publishes one message per element: the receiver observes map
// iteration order.
func BadSend(m map[string]bool, w wire) {
	for k := range m {
		w.Send(k) // want "Send call emits per map element"
	}
}

// BadClosureAppend shows the sort-after check is scoped to the
// enclosing function literal, not the outer function: the closure
// appends with no sort of its own, and the sort call in the outer
// function body runs before the closure ever fires.
func BadClosureAppend(m map[string]int, run func(func())) []string {
	var out []string
	run(func() {
		for k := range m {
			out = append(out, k) // want `append to "out" accumulates`
		}
	})
	sort.Strings(out)
	return out
}
