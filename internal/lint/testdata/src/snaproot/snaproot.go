// Package snaproot is gridlint corpus: state mutated by engine events
// must be reachable from some SnapRoot registration. Each bad scenario
// mutates its own orphan type because the analyzer reports each target
// once, at the first scheduling site that touches it.
package snaproot

import (
	"time"

	"repro/internal/sim"
)

// registered is SnapRoot'd below: events may mutate it freely.
type registered struct{ hits int }

func setupRegistered(eng *sim.Engine, r *registered) {
	eng.SnapRoot("corpus.registered", r)
	_ = eng.Schedule(time.Second, func() { r.hits++ })
}

// orphanDirect is mutated through a captured pointer and never
// registered anywhere.
type orphanDirect struct{ hits int }

func scheduleDirect(eng *sim.Engine, o *orphanDirect) {
	_ = eng.Schedule(time.Second, func() { o.hits++ }) // want `mutates type snaproot.orphanDirect`
}

// orphanMethod is mutated by a method the event calls, one level deep.
type orphanMethod struct{ n int }

func (m *orphanMethod) bump() { m.n++ }

func scheduleMethod(eng *sim.Engine, m *orphanMethod) {
	_ = eng.Schedule(time.Second, func() { m.bump() }) // want `mutates type snaproot.orphanMethod`
}

// orphanMV is mutated by a method value scheduled directly.
type orphanMV struct{ n int }

func (m *orphanMV) bump() { m.n++ }

func scheduleMethodValue(eng *sim.Engine, m *orphanMV) {
	_ = eng.NewTicker(time.Minute, m.bump) // want `mutates type snaproot.orphanMV`
}

// looseHits is a package variable no registration covers.
var looseHits int

func schedulePkgVar(eng *sim.Engine) {
	_ = eng.Schedule(time.Second, func() { looseHits++ }) // want `mutates package variable snaproot.looseHits`
}

// dropCount is mutated by a named package function used as a callback.
var dropCount int

func dropTick() { dropCount++ }

func scheduleNamedFunc(eng *sim.Engine) {
	_ = eng.NewTimer(dropTick) // want `mutates package variable snaproot.dropCount`
}

// anchoredHits is registered by address: covered.
var anchoredHits int

func setupPkgVar(eng *sim.Engine) {
	eng.SnapRoot("corpus.hits", &anchoredHits)
	_ = eng.Schedule(time.Second, func() { anchoredHits++ })
}

// Event-local state dies with the event: not a rewind hazard.
type scratch struct{ n int }

func scheduleLocal(eng *sim.Engine) {
	_ = eng.Schedule(time.Second, func() {
		s := &scratch{n: 1}
		s.n++
	})
}

// auditedOrphan's finding is silenced by a reasoned directive.
type auditedOrphan struct{ n int }

func scheduleAudited(eng *sim.Engine, a *auditedOrphan) {
	//gridlint:ignore snaproot corpus: exercises suppression of an audited orphan target
	_ = eng.Schedule(time.Second, func() { a.n++ })
}
