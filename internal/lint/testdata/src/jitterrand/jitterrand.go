// Package jitterrand is gridlint corpus: resilience machinery built as
// a composite literal (no injected rand source, no engine clock) is
// flagged; the New* constructors are the sanctioned path.
package jitterrand

import (
	"time"

	"repro/internal/resilience"
	"repro/internal/sim"
)

func Bad() {
	ex := resilience.Executor{} // want "resilience.Executor built as a composite literal"
	_ = ex
	k := &resilience.Kit{} // want "resilience.Kit built as a composite literal"
	_ = k
	var r *resilience.Renewer = &resilience.Renewer{} // want "resilience.Renewer built as a composite literal"
	_ = r
}

func Good(eng *sim.Engine) *resilience.Kit {
	// Policy literals are fine — the policy is plain data; the rand
	// source lives in the executor the constructor builds.
	pol := resilience.Policy{Base: 10 * time.Second, Jitter: time.Second}
	_ = resilience.NewExecutor(eng, eng.ForkRand(), pol, nil)
	return resilience.NewKit(eng, eng.ForkRand(), nil)
}
