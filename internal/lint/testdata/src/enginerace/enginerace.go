// Package enginerace is gridlint corpus: engines, rng streams, and
// fault reports are single-goroutine state; handing one to a goroutine
// (capture, argument, receiver, or channel send) is flagged everywhere
// outside internal/perf.
package enginerace

import (
	"math/rand"

	"repro/internal/faultlab"
	"repro/internal/sim"
)

func consumeReport(*faultlab.Report) {}

func BadCaptureEngine(eng *sim.Engine) {
	go func() {
		_ = eng.Now() // want "sim.Engine eng captured by a go func literal"
	}()
}

func BadCaptureRand(rng *rand.Rand) {
	go func() {
		_ = rng.Intn(10) // want "rand.Rand rng captured by a go func literal"
	}()
}

func BadGoArg(rep *faultlab.Report) {
	go consumeReport(rep) // want "faultlab.Report rep passed as a goroutine argument"
}

func BadGoLitArg(eng *sim.Engine) {
	go func(e *sim.Engine) { // the parameter itself is goroutine-local
		_ = e.Now()
	}(eng) // want "sim.Engine eng passed as a goroutine argument"
}

func BadGoReceiver(rng *rand.Rand) {
	go rng.Shuffle(0, func(i, j int) {}) // want "rand.Rand rng is the receiver of a goroutine method call"
}

func BadChannelSend(ch chan *faultlab.SweepResult, res *faultlab.SweepResult) {
	ch <- res // want "faultlab.SweepResult res sent over a channel"
}

func BadChannelSendRand(ch chan *rand.Rand, rng *rand.Rand) {
	ch <- rng // want "rand.Rand rng sent over a channel"
}

// GoodSeedHandoff is the sanctioned shape: hand the goroutine a seed and
// let it build its own private engine and rng.
func GoodSeedHandoff(seed int64, done chan int64) {
	go func() {
		eng := sim.NewEngine(seed)
		rng := rand.New(rand.NewSource(seed))
		_ = eng.Now()
		done <- seed + int64(rng.Intn(10))
	}()
}

// GoodSynchronousClosure uses the engine from a closure that never
// leaves the calling goroutine: no finding.
func GoodSynchronousClosure(eng *sim.Engine) {
	run := func() { _ = eng.Now() }
	run()
}

// GoodValueSend ships a plain summary value, not the report itself.
func GoodValueSend(ch chan int, rep *faultlab.Report) {
	ch <- len(rep.Violations)
}
