// Package ignore is gridlint corpus for directive handling: a
// well-formed //gridlint:ignore suppresses exactly the finding on its
// own line or the line below, and nothing else.
package ignore

import "math/rand"

// Twice draws twice; only the first draw carries a directive, so
// exactly one finding is suppressed and one stays active.
func Twice() (int, int) {
	//gridlint:ignore globalrand corpus fixture: directive must suppress only the next line
	a := rand.Intn(3)
	b := rand.Intn(3)
	return a, b
}

// Inline shows the end-of-line directive form.
func Inline() int {
	return rand.Intn(7) //gridlint:ignore globalrand corpus fixture: inline suppression form
}
