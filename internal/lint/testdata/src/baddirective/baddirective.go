// Package baddirective is gridlint corpus for directive hygiene: every
// directive below is itself a finding (asserted directly in
// lint_test.go rather than via want comments, because a trailing want
// comment would be swallowed into the directive's reason text).
package baddirective

//gridlint:ignore nosuchanalyzer the analyzer name is not real

//gridlint:ignore walltime

//gridlint:ignore

//gridlint:ignore errdrop stale: there is no errdrop finding anywhere near this line

func Clean() int { return 1 }
