// Package globalrand is gridlint corpus: package-level math/rand draws
// are banned everywhere; injected seeded streams are the contract.
package globalrand

import "math/rand"

// GoodInjected builds and uses a seeded stream — the exact remediation
// the analyzer's hint prescribes. rand.New/rand.NewSource are allowed.
func GoodInjected(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// GoodParam draws from a stream handed in by the caller: no finding.
func GoodParam(rng *rand.Rand) float64 { return rng.Float64() }

func BadIntn() int        { return rand.Intn(10) }     // want "global math/rand draw rand.Intn"
func BadFloat64() float64 { return rand.Float64() }    // want "global math/rand draw rand.Float64"
func BadPerm() []int      { return rand.Perm(4) }      // want "global math/rand draw rand.Perm"
func BadExp() float64     { return rand.ExpFloat64() } // want "global math/rand draw rand.ExpFloat64"

func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand draw rand.Shuffle"
}

type fakeRand struct{}

func (fakeRand) Intn(int) int { return 0 }

// GoodShadow shadows the import with a local value; the call resolves
// to the local method, so there is no finding.
func GoodShadow() int {
	rand := fakeRand{}
	return rand.Intn(3)
}
