// Package errdrop is gridlint corpus: discarded errors from
// domain-critical calls (Redeem, Submit, Deploy, ...) are flagged.
package errdrop

import "errors"

type authority struct{}

func (authority) Redeem(tk string) (string, error) { return "", errors.New("double spend") }
func (authority) Submit(j string) error            { return nil }
func (authority) Renew(id string) error            { return nil }
func (authority) Cancel(id string) error           { return nil }

// DeploySlice is package-level: plain function calls are guarded too.
func DeploySlice(name string) error { return nil }

func Bad(a authority) {
	a.Submit("j1")             // want "error returned by Submit is dropped"
	a.Redeem("t1")             // want "error returned by Redeem is dropped"
	lease, _ := a.Redeem("t2") // want "error from Redeem discarded via blank identifier"
	_ = lease
	go a.Submit("j2")    // want "error returned by Submit is dropped"
	defer a.Submit("j3") // want "error returned by Submit is dropped"
	a.Renew("l1")        // want "error returned by Renew is dropped"
	a.Cancel("j4")       // want "error returned by Cancel is dropped"
}

// BadFunc covers plain (non-method) calls to guarded names.
func BadFunc() {
	DeploySlice("cdn") // want "error returned by DeploySlice is dropped"
}

// bank mirrors trust.Bank and trust.Scoreboard: the byzantine-era
// collateral and reputation calls whose dropped errors break the
// conservation audit.
type bank struct{}

func (bank) Deposit(broker string, amount float64) error { return nil }
func (bank) Slash(broker string, amount float64, reason string) (float64, error) {
	return 0, errors.New("unknown broker")
}
func (bank) ReportOutcome(broker string, ok bool) error { return nil }

func BadTrust(b bank) {
	b.Deposit("byz-00", 10)                 // want "error returned by Deposit is dropped"
	b.Slash("byz-00", 1, "double-sell")     // want "error returned by Slash is dropped"
	seized, _ := b.Slash("byz-00", 1, "ds") // want "error from Slash discarded via blank identifier"
	_ = seized
	b.ReportOutcome("honest-00", true)    // want "error returned by ReportOutcome is dropped"
	go b.ReportOutcome("honest-01", true) // want "error returned by ReportOutcome is dropped"
}

func GoodTrust(b bank) error {
	if err := b.Deposit("honest-00", 10); err != nil {
		return err
	}
	seized, err := b.Slash("byz-00", 1, "double-sell")
	_ = seized
	if err != nil {
		return err
	}
	return b.ReportOutcome("honest-00", true)
}

// index mirrors mds.RegionIndex / mds.RootIndex, and ticket mirrors
// sharp.Ticket: the scale-era hot paths whose dropped errors hide a
// lost registration, an empty federation, or an unverified chain.
type index struct{}

func (index) RegisterRecord(reg string) error { return nil }
func (index) QueryShards(q string) (string, error) {
	return "", errors.New("no regions attached")
}

type ticket struct{}

func (ticket) VerifyCached(key, cache string) error { return errors.New("bad chain") }

func BadScale(ix index, tk ticket) {
	ix.RegisterRecord("node-1")          // want "error returned by RegisterRecord is dropped"
	reply, _ := ix.QueryShards("os=lin") // want "error from QueryShards discarded via blank identifier"
	_ = reply
	tk.VerifyCached("k", "c")    // want "error returned by VerifyCached is dropped"
	go tk.VerifyCached("k", "c") // want "error returned by VerifyCached is dropped"
}

func GoodScale(ix index, tk ticket) error {
	if err := ix.RegisterRecord("node-1"); err != nil {
		return err
	}
	reply, err := ix.QueryShards("os=lin")
	_ = reply
	if err != nil {
		return err
	}
	return tk.VerifyCached("k", "c")
}

func Good(a authority) error {
	if err := a.Submit("j"); err != nil {
		return err
	}
	lease, err := a.Redeem("t")
	_ = lease
	return err
}

type fireAndForget struct{}

// Submit here returns nothing: same name, no error result, no finding.
func (fireAndForget) Submit(string) {}

// Do mirrors resilience.Executor.Do: callback-style, no error result.
// The name is guarded only where a Do actually returns an error.
func (fireAndForget) Do(string, func(error)) {}

func GoodNoError(q fireAndForget) {
	q.Submit("x")
	q.Do("op", func(error) {})
}
