// Package errdrop is gridlint corpus: discarded errors from
// domain-critical calls (Redeem, Submit, Deploy, ...) are flagged.
package errdrop

import "errors"

type authority struct{}

func (authority) Redeem(tk string) (string, error) { return "", errors.New("double spend") }
func (authority) Submit(j string) error            { return nil }
func (authority) Renew(id string) error            { return nil }
func (authority) Cancel(id string) error           { return nil }

// DeploySlice is package-level: plain function calls are guarded too.
func DeploySlice(name string) error { return nil }

func Bad(a authority) {
	a.Submit("j1")             // want "error returned by Submit is dropped"
	a.Redeem("t1")             // want "error returned by Redeem is dropped"
	lease, _ := a.Redeem("t2") // want "error from Redeem discarded via blank identifier"
	_ = lease
	go a.Submit("j2")    // want "error returned by Submit is dropped"
	defer a.Submit("j3") // want "error returned by Submit is dropped"
	a.Renew("l1")        // want "error returned by Renew is dropped"
	a.Cancel("j4")       // want "error returned by Cancel is dropped"
}

// BadFunc covers plain (non-method) calls to guarded names.
func BadFunc() {
	DeploySlice("cdn") // want "error returned by DeploySlice is dropped"
}

func Good(a authority) error {
	if err := a.Submit("j"); err != nil {
		return err
	}
	lease, err := a.Redeem("t")
	_ = lease
	return err
}

type fireAndForget struct{}

// Submit here returns nothing: same name, no error result, no finding.
func (fireAndForget) Submit(string) {}

// Do mirrors resilience.Executor.Do: callback-style, no error result.
// The name is guarded only where a Do actually returns an error.
func (fireAndForget) Do(string, func(error)) {}

func GoodNoError(q fireAndForget) {
	q.Submit("x")
	q.Do("op", func(error) {})
}
