// Package snapcapture is gridlint corpus: closures scheduled as engine
// events must not capture mutable state the snapshot walker cannot see.
// Captured locals that the callback rebinds, and locally created
// pointer state whose only reference is the scheduled func value, both
// survive Engine.Fork rewinds silently.
package snapcapture

import (
	"math/rand"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// preHoistChaosRun is the exact shape of the chaos driver before its
// job-stream state was hoisted into a SnapRoot-registered struct: a job
// counter and a private rng live only in ticker captures, so a forked
// timeline replays with post-snapshot job IDs and rng state.
func preHoistChaosRun(eng *sim.Engine, seed int64) {
	next := 0
	jobRng := rand.New(rand.NewSource(seed + 1))
	seen := make(map[int]bool)
	_ = eng.NewTicker(time.Minute, func() { // want `mutates captured local "next"` // want `locally created "jobRng"` // want `locally created "seen"`
		id := next
		next++
		if jobRng.Intn(100) < 50 {
			seen[id] = true
		}
	})
}

// hoistedChaosRun is the fixed shape: all run state lives in a struct
// registered as a snapshot root, and the callback is a method value.
type chaosState struct {
	next   int
	jobRng *rand.Rand
	seen   map[int]bool
}

func (c *chaosState) tick() {
	id := c.next
	c.next++
	if c.jobRng.Intn(100) < 50 {
		c.seen[id] = true
	}
}

func hoistedChaosRun(eng *sim.Engine, seed int64) {
	c := &chaosState{jobRng: rand.New(rand.NewSource(seed + 1)), seen: make(map[int]bool)}
	eng.SnapRoot("corpus.chaos", c)
	_ = eng.NewTicker(time.Minute, c.tick)
}

// A method value whose receiver is fresh local state that is never
// anchored anywhere is just as invisible as a closure capture.
func badMethodValue(eng *sim.Engine, seed int64) {
	c := &chaosState{jobRng: rand.New(rand.NewSource(seed)), seen: make(map[int]bool)}
	_ = eng.NewTicker(time.Minute, c.tick) // want `locally created "c"`
}

// Rebinding any captured local inside the callback is flagged on every
// scheduling surface.
func badTimer(eng *sim.Engine) {
	n := 0
	_ = eng.NewTimer(func() { n++ }) // want `mutates captured local "n"`
}

func badWindow(eng *sim.Engine) {
	active := false
	_ = eng.NewWindow(time.Hour, time.Hour,
		func() { active = true },  // want `mutates captured local "active"`
		func() { active = false }) // want `mutates captured local "active"`
	_ = active
}

func badTracerSchedule(eng *sim.Engine, tr *obs.Tracer, ctx obs.SpanContext) {
	hits := 0
	_ = tr.Schedule(time.Second, ctx, func() { hits++ }) // want `mutates captured local "hits"`
}

func badResilienceOp(ex *resilience.Executor, br *resilience.Breaker) {
	attempts := 0
	ex.Do("corpus.op", br, func(attempt int, settle func(error)) { // want `mutates captured local "attempts"`
		attempts++
		settle(nil)
	}, func(error) {})
}

// Writing through a captured value-typed local mutates the shared
// closure cell itself, not a separately-anchored pointee.
type stats struct{ n int }

func badValueWrite(eng *sim.Engine) {
	var st stats
	_ = eng.Schedule(time.Second, func() { st.n++ }) // want `mutates captured local "st"`
}

// One call level deep: a scheduled closure that invokes a named local
// closure shares its captures.
func badDepthOne(eng *sim.Engine) {
	count := 0
	bump := func() { count++ }
	_ = eng.Schedule(time.Second, func() { bump() }) // want `mutates captured local "count"`
}

// ---- patterns that must stay silent ------------------------------------

// Registering the state (directly or by address) anchors it for the
// walker; writes through the pointer are then rewindable.
func goodSnapRooted(eng *sim.Engine) {
	st := &stats{}
	eng.SnapRoot("corpus.stats", st)
	_ = eng.Schedule(time.Second, func() { st.n++ })
}

func goodAddrRegistered(eng *sim.Engine) {
	var st stats
	eng.SnapRoot("corpus.stats2", &st)
	_ = eng.Schedule(time.Second, func() { st.n++ })
}

// Anchoring as a map key is enough: the walker visits map keys.
func goodMapKeyAnchor(eng *sim.Engine, inflight map[*stats]struct{}) {
	st := &stats{}
	inflight[st] = struct{}{}
	_ = eng.Schedule(time.Second, func() { st.n++ })
}

// The self-rescheduling closure idiom: the func variable itself is not
// mutable state, and reading captured config is fine.
func goodRecursion(eng *sim.Engine, r *stats) {
	period := time.Second
	var tick func()
	tick = func() {
		r.n++ // r is a parameter: its owner anchors it
		_ = eng.Schedule(period, tick)
	}
	_ = eng.Schedule(period, tick)
}

// Kernel handles self-capture: Snapshot walks the engine natively.
func goodKernelCapture(eng *sim.Engine) {
	ev := eng.Schedule(time.Hour, func() {})
	_ = eng.Schedule(time.Second, func() { eng.Cancel(ev) })
}

// An audited capture is silenced by a reasoned directive.
func goodSuppressed(eng *sim.Engine) {
	n := 0
	//gridlint:ignore snapcapture corpus: exercises suppression of an audited capture
	_ = eng.Schedule(time.Second, func() { n++ })
}

// A directive that suppresses nothing is itself a finding.
func staleDirective(eng *sim.Engine) {
	//gridlint:ignore snapcapture nothing on the next line trips the analyzer // want `suppresses nothing`
	_ = eng.Schedule(time.Second, func() {})
}
