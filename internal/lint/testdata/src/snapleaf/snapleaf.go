// Package snapleaf is gridlint corpus: struct graphs registered with
// Engine.SnapRoot must not smuggle state through walker-leaf fields.
// chan and unsafe.Pointer fields lose their contents across Fork; func
// fields keep the func word but lose the capture cells behind it.
package snapleaf

import (
	"unsafe"

	"repro/internal/sim"
)

// root is registered below as "corpus.root"; everything reachable from
// it is subject to the leaf audit.
type root struct {
	inner inner
	n     int

	events chan int // want `chan-typed field snapleaf.root.events is a snapshot-walker leaf reachable from root "corpus.root"`
}

type inner struct {
	OnDone func()
	m      int

	raw unsafe.Pointer // want `unsafe.Pointer-typed field snapleaf.inner.raw is a snapshot-walker leaf reachable from root "corpus.root"`
}

func register(eng *sim.Engine, r *root) {
	eng.SnapRoot("corpus.root", r)
}

// Storing a closure over mutable locals into a reachable func field is
// the capture bug one level removed: Fork restores the field bitwise,
// so the same cells — with their post-snapshot values — come back.
func badStore(r *root) {
	n := 0
	r.inner.OnDone = func() { n++ } // want `closure stored in snapshot-reachable func field snapleaf.inner.OnDone (root "corpus.root") captures mutable "n"`
}

func badCompositeStore(r *root) {
	hits := 0
	r.inner = inner{OnDone: func() { hits++ }} // want `captures mutable "hits"`
}

// Closing over the registered root itself is fine: the walker rewinds
// r's fields, and the closure reads them fresh after a Fork.
func goodStore(r *root) {
	r.inner.OnDone = func() { r.n++ }
}

// A stateless callback is the common, legal shape (Ticker.fn is one).
func goodStatelessStore(r *root) {
	r.inner.OnDone = func() {}
}
