// Package walltime is gridlint corpus: wall-clock reads are banned in
// internal/ packages; time.Duration values and arithmetic are fine.
package walltime

import (
	"time"

	wall "time"
)

const tick = 50 * time.Millisecond

// GoodDuration only moves virtual-time currency around: no finding.
func GoodDuration(d time.Duration) time.Duration { return d + tick }

func BadNow() time.Duration {
	t0 := time.Now()      // want "wall-clock call time.Now"
	return time.Since(t0) // want "wall-clock call time.Since"
}

func BadWait() {
	time.Sleep(tick)    // want "wall-clock call time.Sleep"
	<-time.After(tick)  // want "wall-clock call time.After"
	_ = time.Tick(tick) // want "wall-clock call time.Tick"
}

// BadRenamed proves resolution is by package identity, not by the
// literal identifier "time".
func BadRenamed() wall.Time { return wall.Now() } // want "wall-clock call time.Now"

func BadTimer(fn func()) {
	_ = time.NewTimer(tick)      // want "wall-clock call time.NewTimer"
	_ = time.AfterFunc(tick, fn) // want "wall-clock call time.AfterFunc"
}
