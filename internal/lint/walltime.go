package lint

import (
	"go/ast"
	"strings"
)

// WalltimeAnalyzer forbids wall-clock reads and real-time waits in
// internal/ packages. All simulated time must flow through the
// sim.Engine virtual clock (Engine.Now, Schedule, NewTimer, NewTicker):
// a single time.Now() in a hot path stamps host time into traces and
// destroys byte-for-byte reproducibility. time.Duration values and
// constants (time.Second, ...) remain fine — the type is the currency
// of virtual time; only the wall clock itself is banned.
var WalltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock reads (time.Now/Since/Sleep/After/...) in internal/ packages",
	Run:  runWalltime,
}

// walltimeBanned are the package-level time functions that read or wait
// on the host clock.
var walltimeBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWalltime(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path, "/internal/") {
		return // examples and cmd may touch real time (e.g. CLI timeouts)
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgFunc(pass.Pkg.Info, call, "time", walltimeBanned); ok {
				pass.Reportf(call.Pos(),
					"route time through the sim.Engine clock (Engine.Now / Schedule / NewTimer / NewTicker)",
					"wall-clock call time.%s in internal package %s", name, pass.Pkg.Path)
			}
			return true
		})
	}
}
