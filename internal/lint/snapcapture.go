package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SnapcaptureAnalyzer flags engine-scheduled closures that capture
// mutable state the snapshot walker cannot see. Engine.Snapshot treats
// func values as leaves: a Fork restores the func word bitwise but not
// the heap cells behind its captures, so a scheduled callback that
// keeps counters, cursors, or a private rand.Rand in closure variables
// replays with post-snapshot state — the exact chaosRun bug PR 6 fixed
// by hoisting that state into a SnapRoot-registered struct.
//
// Two shapes are flagged, per callback literal (plus named local
// closures it calls, one level deep):
//
//   - a captured local the callback writes (rebind, ++/--, or a
//     field/index write through a value-typed capture);
//   - a pointer/map/slice created in the enclosing function and never
//     anchored outside the callbacks — reachable only through the func
//     value, hence never captured by a snapshot.
//
// The fix is PR 6's idiom: hoist the state into a named struct,
// register it with Engine.SnapRoot (or hang it off an existing root),
// and make the callback a method value or a closure over that struct.
var SnapcaptureAnalyzer = &Analyzer{
	Name: "snapcapture",
	Doc:  "engine-scheduled closure captures mutable state invisible to Snapshot/Fork",
	Run:  runSnapcapture,
}

func runSnapcapture(pass *Pass) {
	if !strings.Contains(pass.Pkg.Path, "/internal/") {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		regions := fileFuncRegions(f)
		// Group scheduling sites by innermost enclosing function body so
		// each body builds one funcScope shared by all its sites.
		type site struct {
			call *ast.CallExpr
			cbs  []ast.Expr
		}
		byBody := map[*ast.BlockStmt][]site{}
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			cbs := schedCallbackArgs(info, call)
			if len(cbs) == 0 {
				return true
			}
			r := innermostRegion(regions, call.Pos())
			if r == nil {
				return true
			}
			if _, seen := byBody[r.body]; !seen {
				bodies = append(bodies, r.body)
			}
			byBody[r.body] = append(byBody[r.body], site{call, cbs})
			return true
		})
		for _, body := range bodies {
			sites := byBody[body]
			fs := newFuncScope(info, body)
			// Every callback literal in this scope is a capture context:
			// uses inside any of them must not count as anchors.
			type audit struct {
				cb   ast.Expr
				lits []*ast.FuncLit
				recv *types.Var
			}
			var audits []audit
			for _, s := range sites {
				for _, cb := range s.cbs {
					lits, recv := resolveCallback(fs, cb)
					for _, lit := range lits {
						for _, l := range fs.expand(lit) {
							fs.capLits = append(fs.capLits, l)
						}
					}
					audits = append(audits, audit{cb, lits, recv})
				}
			}
			for _, a := range audits {
				for _, lit := range a.lits {
					for _, issue := range fs.captureIssues(fs.expand(lit)) {
						reportCapture(pass, a.cb, issue)
					}
				}
				// A method value (c.submitJob) captures c: if c is fresh
				// local state never anchored elsewhere, the scheduled func
				// value is its only reference — same escape as a literal.
				if a.recv != nil && !fs.addrTakenOutside(a.recv) && fs.escapingCreation(a.recv) {
					reportCapture(pass, a.cb, captureIssue{a.recv, "escaping"})
				}
			}
		}
	}
}

// resolveCallback maps a callback argument expression to the func
// literals whose captures must be audited. A direct literal is itself;
// an identifier bound to a local literal resolves through localFns; a
// reference to a package-level function has no captures; a method value
// x.m captures only x, whose pointee the walker handles if x is
// anchored (snaproot's concern) — all of those return nil.
func resolveCallback(fs *funcScope, cb ast.Expr) ([]*ast.FuncLit, *types.Var) {
	switch e := unparen(cb).(type) {
	case *ast.FuncLit:
		return []*ast.FuncLit{e}, nil
	case *ast.Ident:
		if v, ok := fs.info.Uses[e].(*types.Var); ok {
			if lit := fs.localFns[v]; lit != nil {
				return []*ast.FuncLit{lit}, nil
			}
			return nil, v // func-typed value from elsewhere: opaque
		}
	case *ast.SelectorExpr:
		// Method value: captures the receiver expression's root.
		if id := rootIdent(e.X); id != nil {
			if v, ok := fs.info.Uses[id].(*types.Var); ok {
				return nil, v
			}
		}
	}
	return nil, nil
}

func reportCapture(pass *Pass, cb ast.Expr, issue captureIssue) {
	switch issue.kind {
	case "mutated":
		pass.Reportf(cb.Pos(),
			"hoist it into a SnapRoot-registered struct field",
			"engine-scheduled closure mutates captured local %q: closure variables are snapshot-walker leaves, so Fork will not rewind it",
			issue.v.Name())
	case "escaping":
		pass.Reportf(cb.Pos(),
			"store it in a SnapRoot-registered struct (or pass it to the owner that is)",
			"engine-scheduled closure is the only reference to locally created %q: its state is unreachable from any snapshot root, so Fork will not rewind it",
			issue.v.Name())
	}
}
