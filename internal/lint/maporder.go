package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MaporderAnalyzer flags `range` over a map whose loop body has
// order-sensitive effects. Go deliberately randomises map iteration
// order, so any effect that depends on visit order — appending to a
// slice, emitting trace/output lines, accumulating floating-point sums
// (addition is not associative), or returning the first match — makes
// the run schedule-dependent and breaks the golden traces.
//
// The canonical remediation is collect-keys / sort / iterate:
//
//	keys := make([]string, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//	for _, k := range keys { ... }
//
// That idiom itself contains an append inside a map range, so the
// analyzer recognises it: an append-accumulation is accepted when a
// sort.* call follows the loop in the same function. Emission, float
// accumulation, and first-match returns have no such redemption — a
// later sort cannot reorder output already written or a sum already
// rounded — and are always flagged.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration with order-sensitive effects (append w/o sort, emission, float accumulation, first-match return)",
	Run:  runMaporder,
}

// emitMethods are method names treated as ordered emission: calling one
// per map element publishes elements in iteration order.
var emitMethods = map[string]bool{
	"Send": true, "Emit": true, "Trace": true, "Tracef": true,
	"Log": true, "Logf": true, "Write": true, "WriteString": true,
	"Print": true, "Printf": true, "Println": true, "AddRow": true,
}

var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMaporder(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		// Gather function regions, map ranges, and sort.* call positions
		// in one pass; enclosure is resolved by position containment.
		type region struct{ lo, hi token.Pos }
		var regions []region
		var ranges []*ast.RangeStmt
		var sortCalls []token.Pos
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if v.Body != nil {
					regions = append(regions, region{v.Body.Pos(), v.Body.End()})
				}
			case *ast.FuncLit:
				regions = append(regions, region{v.Body.Pos(), v.Body.End()})
			case *ast.RangeStmt:
				if tv, ok := info.Types[v.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						ranges = append(ranges, v)
					}
				}
			case *ast.CallExpr:
				if _, ok := pkgFunc(info, v, "sort", nil); ok {
					sortCalls = append(sortCalls, v.Pos())
				}
			}
			return true
		})

		for _, rs := range ranges {
			// Innermost enclosing function body, for the sort-after check.
			encl := region{f.Pos(), f.End()}
			for _, r := range regions {
				if r.lo <= rs.Pos() && rs.End() <= r.hi && r.hi-r.lo < encl.hi-encl.lo {
					encl = r
				}
			}
			sortAfter := false
			for _, p := range sortCalls {
				if p > rs.End() && p < encl.hi {
					sortAfter = true
					break
				}
			}
			checkMapRangeBody(pass, rs, sortAfter)
		}
	}
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, sortAfter bool) {
	info := pass.Pkg.Info
	loopVars := map[types.Object]bool{}
	var loopKey types.Object
	for i, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				loopVars[obj] = true
				if i == 0 {
					loopKey = obj
				}
			}
		}
	}
	// indexedByLoopKey reports whether e is m[k] with k exactly the range
	// key: each key is visited once, so such writes are commutative.
	indexedByLoopKey := func(e ast.Expr) bool {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			return false
		}
		id, ok := ix.Index.(*ast.Ident)
		return ok && loopKey != nil && info.Uses[id] == loopKey
	}
	usesLoopVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	outer := func(e ast.Expr) (*ast.Ident, bool) {
		id := rootIdent(e)
		if id == nil || id.Name == "_" {
			return nil, false
		}
		return id, !definedWithin(info, id, rs.Pos(), rs.End())
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			switch v.Tok {
			case token.ASSIGN:
				for i, lhs := range v.Lhs {
					id, isOuter := outer(lhs)
					if !isOuter || i >= len(v.Rhs) {
						continue
					}
					// dst[k] = v keyed by the range key is the blessed
					// map-copy idiom: commutative, each key visited once.
					if indexedByLoopKey(lhs) {
						continue
					}
					if call, ok := v.Rhs[i].(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
						if !sortAfter {
							pass.Reportf(v.Pos(),
								"collect into "+id.Name+" then sort.* it after the loop (or iterate pre-sorted keys)",
								"append to %q accumulates in map iteration order", id.Name)
						}
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range v.Lhs {
					id, isOuter := outer(lhs)
					if !isOuter || indexedByLoopKey(lhs) {
						continue
					}
					if tv, ok := info.Types[lhs]; ok && isFloat(tv.Type) {
						pass.Reportf(v.Pos(),
							"iterate sorted keys: float accumulation is not associative, so the sum depends on visit order",
							"floating-point accumulation into %q inside map iteration", id.Name)
					}
				}
			}
		case *ast.CallExpr:
			if name, ok := pkgFunc(info, v, "fmt", fmtPrinters); ok {
				pass.Reportf(v.Pos(),
					"iterate sorted keys so output lines have a stable order",
					"fmt.%s emits in map iteration order", name)
				return true
			}
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && emitMethods[sel.Sel.Name] {
				// Only method calls (receiver is a value, not a package).
				if id, ok := sel.X.(*ast.Ident); ok {
					if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
						return true
					}
				}
				pass.Reportf(v.Pos(),
					"iterate sorted keys so the emission sequence is reproducible",
					"%s call emits per map element in iteration order", sel.Sel.Name)
			}
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				if usesLoopVar(res) {
					pass.Reportf(v.Pos(),
						"first match over an unordered map is schedule-dependent; iterate sorted keys or index the map directly",
						"return of loop-dependent value from inside map iteration")
					break
				}
			}
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
