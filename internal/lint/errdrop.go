package lint

import (
	"go/ast"
	"go/types"
)

// ErrdropAnalyzer flags discarded error returns from domain-critical
// calls. SHARP's correctness story is auditable claim/lease accounting:
// a Redeem or Submit whose error vanishes is an account that silently
// stopped balancing — double-spends, lost jobs, and leaked leases all
// start as an ignored error. The analyzer is name-targeted (not every
// error in the tree) so the signal stays sharp: these are the calls
// whose failure changes resource-accounting state.
var ErrdropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "flag discarded errors from domain-critical calls (Redeem, Claim, Submit, Renew, Deploy, Slash, ReportOutcome, ...)",
	Run:  runErrdrop,
}

// errdropTargets are the guarded call names. A call is flagged when its
// name matches and an error result is discarded — as a bare statement,
// via the blank identifier, or behind go/defer.
var errdropTargets = map[string]bool{
	"Redeem":      true,
	"Claim":       true,
	"AcquirePort": true,
	"Submit":      true,
	"Deploy":      true,
	"DeploySlice": true,
	"Acquire":     true,
	"Stock":       true,
	"StartAll":    true,
	"Barter":      true,
	// Resilience-era accounting calls: a renewal or cancel whose error
	// vanishes is a lease that lapses (or a job that leaks) silently, and
	// a retry loop's terminal error is the only record that it gave up.
	"Renew":      true,
	"RenewLease": true,
	"Cancel":     true,
	"Do":         true,
	// Byzantine-era trust accounting: a Deposit or Slash whose error
	// vanishes is collateral that silently stopped conserving, and a
	// dropped ReportOutcome is a fraud the scoreboard never learns about.
	"Deposit":       true,
	"Slash":         true,
	"ReportOutcome": true,
	// Scale-era hot paths: a RegisterRecord whose error vanishes is a
	// sensor the index silently never learned about; a dropped
	// QueryShards error hides ErrNoRegions behind an empty result; and a
	// discarded VerifyCached result is an unverified delegation chain
	// treated as verified.
	"RegisterRecord": true,
	"QueryShards":    true,
	"VerifyCached":   true,
}

func runErrdrop(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.ExprStmt:
				if call, ok := v.X.(*ast.CallExpr); ok {
					reportDroppedCall(pass, call)
				}
			case *ast.GoStmt:
				reportDroppedCall(pass, v.Call)
			case *ast.DeferStmt:
				reportDroppedCall(pass, v.Call)
			case *ast.AssignStmt:
				// a, _ := x.Redeem(tk) — blank in the error position.
				if len(v.Rhs) == 1 {
					if call, ok := v.Rhs[0].(*ast.CallExpr); ok {
						name, idxs := errdropCall(info, call)
						for _, i := range idxs {
							if i < len(v.Lhs) && isBlank(v.Lhs[i]) {
								pass.Reportf(call.Pos(),
									"handle the error or justify with //gridlint:ignore errdrop <reason>",
									"error from %s discarded via blank identifier", name)
							}
						}
					}
				}
			}
			return true
		})
	}
}

func reportDroppedCall(pass *Pass, call *ast.CallExpr) {
	if name, idxs := errdropCall(pass.Pkg.Info, call); len(idxs) > 0 {
		pass.Reportf(call.Pos(),
			"handle the error or justify with //gridlint:ignore errdrop <reason>",
			"error returned by %s is dropped", name)
	}
}

// errdropCall reports whether call targets a guarded name and, if so,
// the result indexes holding an error.
func errdropCall(info *types.Info, call *ast.CallExpr) (string, []int) {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	case *ast.Ident:
		name = fn.Name
	default:
		return "", nil
	}
	if !errdropTargets[name] {
		return "", nil
	}
	tv, ok := info.Types[call]
	if !ok {
		return "", nil
	}
	var idxs []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				idxs = append(idxs, i)
			}
		}
	default:
		if isErrorType(t) {
			idxs = append(idxs, 0)
		}
	}
	return name, idxs
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
