package lint

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The corpus loader is shared across tests: type-checking pulls the
// used slice of the standard library through the source importer, and
// paying that cost once keeps the suite fast.
var (
	corpusOnce   sync.Once
	corpusLoader *Loader
	corpusErr    error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	corpusOnce.Do(func() {
		corpusLoader, corpusErr = NewLoader(".")
	})
	if corpusErr != nil {
		t.Fatalf("NewLoader: %v", corpusErr)
	}
	return corpusLoader
}

func loadCorpus(t *testing.T, name string) (*Loader, *Package) {
	t.Helper()
	loader := sharedLoader(t)
	pkgs, err := loader.Load("internal/lint/testdata/src/" + name)
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%s): got %d packages, want 1", name, len(pkgs))
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Errorf("corpus %s does not type-check: %v", name, terr)
	}
	return loader, pkg
}

// want annotations: // want "regexp" or // want `regexp`, trailing on
// the offending line.
var wantRe = regexp.MustCompile("// want (?:\"([^\"]+)\"|`([^`]+)`)")

func wantsIn(loader *Loader, pkg *Package) map[int][]*regexp.Regexp {
	wants := map[int][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					line := loader.Fset.Position(c.Pos()).Line
					wants[line] = append(wants[line], regexp.MustCompile(regexp.QuoteMeta(pat)))
				}
			}
		}
	}
	return wants
}

// runCorpus checks a corpus package's findings exactly match its want
// annotations: every want hit, no unexpected findings.
func runCorpus(t *testing.T, name string, analyzers ...*Analyzer) Result {
	t.Helper()
	loader, pkg := loadCorpus(t, name)
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	res := Run(loader.Fset, []*Package{pkg}, analyzers)
	wants := wantsIn(loader, pkg)
	matched := map[string]bool{} // "line/idx" of consumed wants
	for _, f := range res.Findings {
		ok := false
		for i, re := range wants[f.Pos.Line] {
			key := fmt.Sprintf("%d/%d", f.Pos.Line, i)
			if !matched[key] && re.MatchString(f.Message) {
				matched[key] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for line, regs := range wants {
		for i, re := range regs {
			if !matched[fmt.Sprintf("%d/%d", line, i)] {
				t.Errorf("%s line %d: no finding matched want %q", name, line, re)
			}
		}
	}
	return res
}

func TestWalltimeCorpus(t *testing.T)   { runCorpus(t, "walltime", WalltimeAnalyzer) }
func TestGlobalrandCorpus(t *testing.T) { runCorpus(t, "globalrand", GlobalrandAnalyzer) }
func TestMaporderCorpus(t *testing.T)   { runCorpus(t, "maporder", MaporderAnalyzer) }
func TestErrdropCorpus(t *testing.T)    { runCorpus(t, "errdrop", ErrdropAnalyzer) }
func TestJitterrandCorpus(t *testing.T) { runCorpus(t, "jitterrand", JitterrandAnalyzer) }
func TestEngineraceCorpus(t *testing.T) { runCorpus(t, "enginerace", EngineraceAnalyzer) }

func TestSnapcaptureCorpus(t *testing.T) { runCorpus(t, "snapcapture", SnapcaptureAnalyzer) }
func TestSnapleafCorpus(t *testing.T)    { runCorpus(t, "snapleaf", SnapleafAnalyzer) }
func TestSnaprootCorpus(t *testing.T)    { runCorpus(t, "snaproot", SnaprootAnalyzer) }

// TestSnapcaptureCatchesChaosRunRegression is the regression gate for
// the PR 6 chaosRun bug: the job counter, the private rand.Rand, and
// the seen-set lived only in ticker captures, so forked timelines
// replayed with post-snapshot state. The corpus preserves that exact
// shape; snapcapture must flag all three captures.
func TestSnapcaptureCatchesChaosRunRegression(t *testing.T) {
	res := runCorpus(t, "snapcapture", SnapcaptureAnalyzer)
	for _, name := range []string{`"next"`, `"jobRng"`, `"seen"`} {
		found := false
		for _, f := range res.Findings {
			if f.Analyzer == "snapcapture" && strings.Contains(f.Message, name) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("chaosRun regression shape: no snapcapture finding mentions %s", name)
		}
	}
}

// TestJitterrandSkipsResiliencePackage: the guarded package's own files
// (constructors, tests) may build the literals.
func TestJitterrandSkipsResiliencePackage(t *testing.T) {
	loader, pkg := loadCorpus(t, "jitterrand")
	scoped := *pkg
	scoped.Path = "repro/internal/resilience"
	res := Run(loader.Fset, []*Package{&scoped}, []*Analyzer{JitterrandAnalyzer})
	if len(res.Findings) != 0 {
		t.Errorf("jitterrand inside its own package: got %d findings, want 0; first: %v",
			len(res.Findings), res.Findings[0])
	}
}

// TestEngineraceSkipsPerfSubtree: internal/perf and its subpackages own
// the one-engine-per-worker discipline, so the same goroutine handoffs
// produce no findings there (including external test variants).
func TestEngineraceSkipsPerfSubtree(t *testing.T) {
	loader, pkg := loadCorpus(t, "enginerace")
	for _, path := range []string{
		"repro/internal/perf",
		"repro/internal/perf/chaos",
		"repro/internal/perf/chaos_test",
	} {
		scoped := *pkg
		scoped.Path = path
		res := Run(loader.Fset, []*Package{&scoped}, []*Analyzer{EngineraceAnalyzer})
		if len(res.Findings) != 0 {
			t.Errorf("enginerace inside %s: got %d findings, want 0; first: %v",
				path, len(res.Findings), res.Findings[0])
		}
	}
}

// TestWalltimeScopedToInternal: the same wall-clock-ridden code outside
// internal/ produces no findings — examples and cmd may touch real time.
func TestWalltimeScopedToInternal(t *testing.T) {
	loader, pkg := loadCorpus(t, "walltime")
	scoped := *pkg
	scoped.Path = "repro/examples/walltime"
	res := Run(loader.Fset, []*Package{&scoped}, []*Analyzer{WalltimeAnalyzer})
	if len(res.Findings) != 0 {
		t.Errorf("walltime outside internal/: got %d findings, want 0; first: %v",
			len(res.Findings), res.Findings[0])
	}
}

// TestIgnoreSuppressesExactlyOne: a directive suppresses the finding on
// its own line or the line below — and nothing else.
func TestIgnoreSuppressesExactlyOne(t *testing.T) {
	loader, pkg := loadCorpus(t, "ignore")
	res := Run(loader.Fset, []*Package{pkg}, []*Analyzer{GlobalrandAnalyzer})
	if len(res.Findings) != 1 {
		t.Fatalf("active findings = %d, want exactly 1 (the undirected rand.Intn); got %v",
			len(res.Findings), res.Findings)
	}
	if f := res.Findings[0]; !strings.Contains(f.Message, "rand.Intn") {
		t.Errorf("surviving finding is not the bare rand.Intn: %v", f)
	}
	if len(res.Suppressed) != 2 {
		t.Fatalf("suppressed findings = %d, want 2 (one per directive form); got %v",
			len(res.Suppressed), res.Suppressed)
	}
	for _, s := range res.Suppressed {
		if s.IgnoreReason == "" {
			t.Errorf("suppressed finding lost its audit reason: %v", s)
		}
	}
}

// TestDirectiveHygiene: unknown analyzer names, missing reasons, and
// stale directives are themselves findings.
func TestDirectiveHygiene(t *testing.T) {
	loader, pkg := loadCorpus(t, "baddirective")
	res := Run(loader.Fset, []*Package{pkg}, Analyzers())
	wantSubstrings := []string{
		`unknown analyzer "nosuchanalyzer"`,
		"gridlint:ignore walltime has no reason",
		"needs an analyzer name and a reason",
		"suppresses nothing",
	}
	if len(res.Findings) != len(wantSubstrings) {
		t.Fatalf("directive findings = %d, want %d; got %v",
			len(res.Findings), len(wantSubstrings), res.Findings)
	}
	for _, want := range wantSubstrings {
		found := false
		for _, f := range res.Findings {
			if f.Analyzer == "directive" && strings.Contains(f.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive finding containing %q in %v", want, res.Findings)
		}
	}
}

// TestStaleDirectiveNotJudgedWhenAnalyzerNotRun: when the directive's
// analyzer is not part of the run, its usefulness cannot be judged, so
// no stale-directive finding is produced for it.
func TestStaleDirectiveNotJudgedWhenAnalyzerNotRun(t *testing.T) {
	loader, pkg := loadCorpus(t, "baddirective")
	res := Run(loader.Fset, []*Package{pkg}, []*Analyzer{WalltimeAnalyzer})
	for _, f := range res.Findings {
		if strings.Contains(f.Message, "suppresses nothing") {
			t.Errorf("stale errdrop directive judged without running errdrop: %v", f)
		}
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("walltime,errdrop")
	if err != nil || len(as) != 2 || as[0].Name != "walltime" || as[1].Name != "errdrop" {
		t.Errorf("ByName(walltime,errdrop) = %v, %v", as, err)
	}
	if _, err := ByName("walltime,nope"); err == nil {
		t.Error("ByName with unknown analyzer: want error, got nil")
	}
	all, err := ByName("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Errorf("ByName(\"\") = %d analyzers, %v; want full suite", len(all), err)
	}
}

// TestRepoIsClean is the contract this whole PR exists to enforce: the
// repository at HEAD has zero unsuppressed findings. If this fails, a
// determinism violation slipped in — fix it or justify it with a
// //gridlint:ignore <analyzer> <reason> directive.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint skipped in -short mode")
	}
	loader := sharedLoader(t)
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("Load(./...) found only %d packages — loader regression?", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type check: %v", pkg.Path, terr)
		}
	}
	res := Run(loader.Fset, pkgs, Analyzers())
	for _, f := range res.Findings {
		t.Errorf("determinism contract violation: %s", f)
	}
	for _, s := range res.Suppressed {
		t.Logf("audited suppression: %s (reason: %s)", s.Pos, s.IgnoreReason)
	}
}
