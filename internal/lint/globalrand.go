package lint

import (
	"go/ast"
)

// GlobalrandAnalyzer forbids draws from math/rand's package-level
// (globally seeded) stream anywhere in the repository. The global
// stream is shared mutable state: any draw in one subsystem perturbs
// every other subsystem's sequence, and Go seeds it per-process, so two
// runs of "the same" scenario diverge. All randomness must come from an
// injected *rand.Rand built with rand.New(rand.NewSource(seed)) —
// typically sim.Engine.Rand() or a stream forked via Engine.ForkRand().
// Constructors (rand.New, rand.NewSource, rand.NewZipf) are allowed:
// they are exactly how the contract is satisfied.
var GlobalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid package-level math/rand draws (rand.Intn, rand.Float64, ...); inject a seeded *rand.Rand",
	Run:  runGlobalrand,
}

var globalrandBanned = map[string]bool{
	"Int":         true,
	"Intn":        true,
	"Int31":       true,
	"Int31n":      true,
	"Int63":       true,
	"Int63n":      true,
	"Uint32":      true,
	"Uint64":      true,
	"Float32":     true,
	"Float64":     true,
	"ExpFloat64":  true,
	"NormFloat64": true,
	"Perm":        true,
	"Shuffle":     true,
	"Read":        true,
	"Seed":        true,
}

func runGlobalrand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgFunc(pass.Pkg.Info, call, "math/rand", globalrandBanned); ok {
				pass.Reportf(call.Pos(),
					"draw from an injected seeded stream: rng := rand.New(rand.NewSource(seed)); rng."+name+"(...)",
					"global math/rand draw rand.%s breaks seed-reproducibility", name)
			}
			return true
		})
	}
}
