package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SnapleafAnalyzer walks the struct type graph reachable from every
// Engine.SnapRoot registration site and flags fields the snapshot
// walker treats as leaves while they plausibly hold mutable state:
//
//   - chan fields: buffered elements and waiters are runtime state the
//     walker cannot capture, and channels have no place in the
//     single-threaded engine anyway;
//   - unsafe.Pointer fields: the walker restores the word but cannot
//     know the pointee's type, so nothing behind it is captured;
//   - func fields that some package assigns a closure over mutable
//     captures: the func word is restored bitwise, the captures are not.
//
// Plain func fields (callbacks over anchored receivers, stateless
// hooks) are legal and common — Ticker.fn is one — so func fields are
// only flagged when a store of a capture-mutating literal is found.
// The walk stops at interfaces (snaproot audits dynamic state) and at
// the leaves themselves.
var SnapleafAnalyzer = &Analyzer{
	Name:   "snapleaf",
	Doc:    "SnapRoot-reachable field is a snapshot-walker leaf holding mutable state",
	RunAll: runSnapleaf,
}

// snapRootSite is one Engine.SnapRoot call: the registration name (when
// it is a string literal), the static type of the root argument, and —
// when the argument is v or &v for a package-level variable — that
// variable, so snaproot can credit the registration to it.
type snapRootSite struct {
	pos     token.Pos
	name    string
	typ     types.Type
	rootVar *types.Var
}

// collectSnapRoots finds every SnapRoot call in the loaded packages.
func collectSnapRoots(pkgs []*Package) []snapRootSite {
	var sites []snapRootSite
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				meth, ok := snapRegCall(info, call)
				if !ok || meth != "SnapRoot" || len(call.Args) < 2 {
					return true
				}
				s := snapRootSite{pos: call.Pos(), name: "?"}
				if lit, ok := unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
					s.name = lit.Value
				}
				if tv, ok := info.Types[call.Args[1]]; ok {
					s.typ = tv.Type
				}
				arg := unparen(call.Args[1])
				if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
					arg = unparen(u.X)
				}
				if id, ok := arg.(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
						s.rootVar = v
					}
				}
				if s.typ != nil {
					sites = append(sites, s)
				}
				return true
			})
		}
	}
	return sites
}

// fieldKey names a struct field portably across checker runs: the
// loader type-checks loaded and imported packages separately, so the
// same field is represented by distinct objects in different packages'
// views, but its declaration position is stable.
func fieldKey(fset *token.FileSet, fld *types.Var) string {
	p := fset.Position(fld.Pos())
	return fmt.Sprintf("%s:%d:%s", p.Filename, p.Line, fld.Name())
}

func runSnapleaf(pass *AllPass) {
	sites := collectSnapRoots(pass.Pkgs)
	w := &leafWalker{fset: pass.Fset, seen: map[string]bool{}, flagged: map[string]bool{}}
	for i := range sites {
		w.site = &sites[i]
		w.walk(sites[i].typ)
	}

	// Hard leaves report immediately; func fields only when a package
	// stores a closure over mutable captures into them.
	for _, lf := range w.leaves {
		pass.Reportf(lf.field.Pos(),
			"replace it with walker-visible state (plain fields, slices, maps) or an OnSnap hook",
			"%s-typed field %s.%s is a snapshot-walker leaf reachable from root %s: its state survives Fork rewinds",
			lf.kind, lf.owner, lf.field.Name(), lf.root)
	}
	reportFuncFieldStores(pass, w.funcFields)
}

type leafField struct {
	field *types.Var
	owner string
	root  string
	kind  string
}

type leafWalker struct {
	site    *snapRootSite
	fset    *token.FileSet
	seen    map[string]bool
	flagged map[string]bool
	leaves  []leafField
	// funcFields maps each reachable func-typed field (by fieldKey) to
	// the root it was first reached from, for the store scan.
	funcFields map[string]leafField
}

func (w *leafWalker) walk(t types.Type) {
	key := w.site.name + "|" + t.String()
	if w.seen[key] {
		return
	}
	w.seen[key] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		w.walk(u.Elem())
	case *types.Slice:
		w.walk(u.Elem())
	case *types.Array:
		w.walk(u.Elem())
	case *types.Map:
		w.walk(u.Key())
		w.walk(u.Elem())
	case *types.Struct:
		owner := t.String()
		if named, ok := t.(*types.Named); ok {
			owner = named.Obj().Name()
			if named.Obj().Pkg() != nil {
				owner = named.Obj().Pkg().Name() + "." + owner
			}
		}
		for i := 0; i < u.NumFields(); i++ {
			fld := u.Field(i)
			w.field(owner, fld)
		}
	case *types.Interface, *types.Signature, *types.Chan:
		// Terminal here: interfaces are snaproot's domain; bare func and
		// chan types only matter as struct fields, handled in field().
	}
}

func (w *leafWalker) field(owner string, fld *types.Var) {
	t := fld.Type()
	switch u := t.Underlying().(type) {
	case *types.Chan:
		w.flag(owner, fld, "chan")
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			w.flag(owner, fld, "unsafe.Pointer")
		}
	case *types.Signature:
		if w.funcFields == nil {
			w.funcFields = map[string]leafField{}
		}
		key := fieldKey(w.fset, fld)
		if _, ok := w.funcFields[key]; !ok {
			w.funcFields[key] = leafField{fld, owner, w.site.name, "func"}
		}
	default:
		w.walk(t)
	}
}

func (w *leafWalker) flag(owner string, fld *types.Var, kind string) {
	key := fieldKey(w.fset, fld)
	if w.flagged[key] {
		return
	}
	w.flagged[key] = true
	w.leaves = append(w.leaves, leafField{fld, owner, w.site.name, kind})
}

// reportFuncFieldStores scans every loaded package for assignments and
// composite literals that store a func literal into a SnapRoot-reachable
// func field, and flags the store when the literal captures mutable
// state (same classification snapcapture applies to scheduled closures).
func reportFuncFieldStores(pass *AllPass, funcFields map[string]leafField) {
	if len(funcFields) == 0 {
		return
	}
	for _, pkg := range pass.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			regions := fileFuncRegions(f)
			ast.Inspect(f, func(n ast.Node) bool {
				var lf leafField
				var lit *ast.FuncLit
				var pos token.Pos
				track := func(id *ast.Ident, rhs ast.Expr, at token.Pos) {
					v, ok := info.Uses[id].(*types.Var)
					if !ok || !v.IsField() {
						return
					}
					got, tracked := funcFields[fieldKey(pass.Fset, v)]
					if !tracked {
						return
					}
					if l, ok := unparen(rhs).(*ast.FuncLit); ok {
						lf, lit, pos = got, l, at
					}
				}
				switch st := n.(type) {
				case *ast.AssignStmt:
					if len(st.Lhs) != len(st.Rhs) {
						return true
					}
					for i, lhs := range st.Lhs {
						if sel, ok := lhs.(*ast.SelectorExpr); ok {
							track(sel.Sel, st.Rhs[i], st.Pos())
						}
					}
				case *ast.CompositeLit:
					for _, el := range st.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok {
							track(key, kv.Value, kv.Pos())
						}
					}
				}
				if lit == nil {
					return true
				}
				r := innermostRegion(regions, lit.Pos())
				if r == nil {
					return true
				}
				fs := newFuncScope(info, r.body)
				fs.capLits = fs.expand(lit)
				for _, issue := range fs.captureIssues(fs.expand(lit)) {
					pass.Reportf(pos,
						"hoist the captured state into the root struct and close over that",
						"closure stored in snapshot-reachable func field %s.%s (root %s) captures mutable %q: captures are walker-invisible, so Fork will not rewind it",
						lf.owner, lf.field.Name(), lf.root, issue.v.Name())
				}
				return true
			})
		}
	}
}
