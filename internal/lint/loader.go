// Package lint is gridlab's determinism and correctness analyzer suite.
//
// The simulator's evidentiary value rests on a reproducibility contract:
// the same seed must produce the same trace byte-for-byte. That contract
// is trivially broken by a stray wall-clock read, a draw from the global
// math/rand stream, or a range over a map whose iteration order leaks
// into a trace or an accumulated value. This package mechanically
// enforces the contract with a small, self-contained static-analysis
// driver built only on the standard library (go/parser, go/ast,
// go/token, go/types) — no external module dependencies.
//
// The loader half of the package discovers packages under a module,
// parses them, and type-checks them with a custom importer: paths inside
// the module are resolved and checked recursively from source; standard
// library paths are delegated to go/importer's source-mode compiler
// importer. This keeps the tool runnable with nothing but a Go
// toolchain and the repository checkout.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	Path  string // import path, e.g. "repro/internal/sim"
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds soft type-check errors. Analysis proceeds with
	// partial type information; the driver reports these separately so a
	// broken tree fails loudly rather than silently passing.
	TypeErrors []error
}

// Loader discovers and type-checks packages under a single module.
type Loader struct {
	Fset *token.FileSet
	// IncludeTests adds _test.go files of the in-package test variant to
	// analysis. External test packages (package foo_test) are loaded as
	// separate synthetic packages with path suffix "_test".
	IncludeTests bool

	modPath string
	modDir  string
	std     types.Importer
	cache   map[string]*types.Package
}

// NewLoader returns a loader rooted at the module containing dir (found
// by walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modPath: modPath,
		modDir:  modDir,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*types.Package{},
	}, nil
}

// ModuleDir returns the absolute module root directory.
func (l *Loader) ModuleDir() string { return l.modDir }

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: go.mod in %s has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load resolves the given patterns to packages. A pattern is either a
// directory path (absolute, or relative to the loader's module root),
// optionally ending in "/..." for a recursive walk, or an import path
// inside the module. Directories named testdata or vendor, and names
// starting with "." or "_", are skipped during walks, matching go tool
// conventions.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !dirSet[d] {
			dirSet[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" || pat == "." {
				pat = l.modDir
			}
		}
		if strings.HasPrefix(pat, l.modPath) {
			rel := strings.TrimPrefix(strings.TrimPrefix(pat, l.modPath), "/")
			pat = filepath.Join(l.modDir, rel)
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.modDir, pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var pkgs []*Package
	for _, dir := range dirs {
		names, testNames, xtestNames, err := goFilesIn(dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 && !(l.IncludeTests && (len(testNames) > 0 || len(xtestNames) > 0)) {
			continue
		}
		path := l.importPathFor(dir)
		var files []string
		files = append(files, names...)
		if l.IncludeTests {
			files = append(files, testNames...)
		}
		if len(files) > 0 {
			pkg, err := l.loadFiles(path, dir, files)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
		if l.IncludeTests && len(xtestNames) > 0 {
			pkg, err := l.loadFiles(path+"_test", dir, xtestNames)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// goFilesIn splits a directory's .go files into non-test, in-package
// test, and external-test (package foo_test) groups, each sorted.
func goFilesIn(dir string) (names, testNames, xtestNames []string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
			continue
		}
		ext, err := isExternalTest(filepath.Join(dir, n))
		if err != nil {
			return nil, nil, nil, err
		}
		if ext {
			xtestNames = append(xtestNames, n)
		} else {
			testNames = append(testNames, n)
		}
	}
	sort.Strings(names)
	sort.Strings(testNames)
	sort.Strings(xtestNames)
	return names, testNames, xtestNames, nil
}

func isExternalTest(file string) (bool, error) {
	f, err := parser.ParseFile(token.NewFileSet(), file, nil, parser.PackageClauseOnly)
	if err != nil {
		return false, err
	}
	return strings.HasSuffix(f.Name.Name, "_test"), nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.modDir, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// loadFiles parses and type-checks one package unit.
func (l *Loader) loadFiles(path, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Info: info}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	pkg.Types = tpkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths are checked
// recursively from source; everything else (the standard library) is
// delegated to the source-mode compiler importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		dir := filepath.Join(l.modDir, rel)
		names, _, _, err := goFilesIn(dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		var files []*ast.File
		for _, n := range names {
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, 0)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		conf := types.Config{Importer: l}
		pkg, err := conf.Check(path, l.Fset, files, nil)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	p, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = p
	return p, nil
}
