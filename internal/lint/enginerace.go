package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// EngineraceAnalyzer forbids sharing single-goroutine simulation state
// across goroutines. A sim.Engine, its *rand.Rand streams, and the
// faultlab report structs they populate are all unsynchronized by
// design: determinism comes from one goroutine driving one engine with
// one rng stream in program order. Handing any of them to a goroutine —
// captured by a go func literal, passed as a go-call argument, or sent
// over a channel — reintroduces scheduler-dependent interleaving, and
// the byte-identical-replay contract dies quietly. internal/perf is the
// one sanctioned crossing point: its executor gives each run a private
// engine and rng and writes results into per-run slots, so that subtree
// is exempt.
var EngineraceAnalyzer = &Analyzer{
	Name: "enginerace",
	Doc:  "forbid goroutine capture or channel transfer of sim.Engine, rand.Rand, or faultlab report state outside internal/perf",
	Run:  runEnginerace,
}

// perfPath is the sanctioned parallelism subtree; its packages own the
// one-engine-per-worker discipline the rest of the repo must not
// improvise.
const perfPath = "repro/internal/perf"

const engineraceHint = "give each goroutine a private engine and rng via internal/perf's executor (one run per slot, reduced in grid order)"

// engineraceGuarded maps (package path, type name) to the display name
// used in diagnostics. Pointers to these types are deref'd first, so
// both *sim.Engine and sim.Engine values match.
var engineraceGuarded = map[[2]string]string{
	{"repro/internal/sim", "Engine"}:           "sim.Engine",
	{"math/rand", "Rand"}:                      "rand.Rand",
	{"repro/internal/faultlab", "Report"}:      "faultlab.Report",
	{"repro/internal/faultlab", "SweepResult"}: "faultlab.SweepResult",
}

func runEnginerace(pass *Pass) {
	path := strings.TrimSuffix(pass.Pkg.Path, "_test")
	if path == perfPath || strings.HasPrefix(path, perfPath+"/") {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				checkEngineraceGo(pass, info, st)
			case *ast.SendStmt:
				if name, ok := guardedExpr(info, st.Value); ok {
					pass.Reportf(st.Value.Pos(), engineraceHint,
						"%s %s sent over a channel leaves the single-goroutine discipline", name, engineraceExprName(st.Value))
				}
			}
			return true
		})
	}
}

// checkEngineraceGo flags the three ways a go statement smuggles guarded
// state to another goroutine: as the method receiver of the spawned
// call, as a call argument, or as a free variable of a go func literal.
func checkEngineraceGo(pass *Pass, info *types.Info, st *ast.GoStmt) {
	call := st.Call
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if name, ok := guardedExpr(info, sel.X); ok {
			pass.Reportf(sel.X.Pos(), engineraceHint,
				"%s %s is the receiver of a goroutine method call", name, engineraceExprName(sel.X))
		}
	}
	for _, arg := range call.Args {
		if name, ok := guardedExpr(info, arg); ok {
			pass.Reportf(arg.Pos(), engineraceHint,
				"%s %s passed as a goroutine argument", name, engineraceExprName(arg))
		}
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || seen[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // declared inside the literal: goroutine-private
		}
		if name, guarded := guardedType(obj.Type()); guarded {
			seen[obj] = true
			pass.Reportf(id.Pos(), engineraceHint,
				"%s %s captured by a go func literal", name, id.Name)
		}
		return true
	})
}

func guardedExpr(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return "", false
	}
	return guardedType(tv.Type)
}

func guardedType(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	name, ok := engineraceGuarded[[2]string{obj.Pkg().Path(), obj.Name()}]
	return name, ok
}

func engineraceExprName(e ast.Expr) string {
	if id := rootIdent(e); id != nil {
		return id.Name
	}
	return "value"
}
