package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// snapshot.go holds the machinery shared by the snapshot-safety analyzer
// family (snapcapture, snapleaf, snaproot). The contract they enforce is
// sim/snapwalk.go's: Engine.Snapshot deep-captures every piece of
// mutable state reachable from the engine and its SnapRoot-registered
// object graphs, but func values are leaves — a closure's captured
// variables are invisible to reflection, so mutable state that lives
// only in closure captures of engine-scheduled callbacks silently
// escapes a Fork rewind. The analyzers reduce that convention to
// mechanically checkable facts:
//
//   - which calls hand a callback to the engine (schedEntries),
//   - which variables a callback closes over (freeVars),
//   - which of those captures the walker could never restore
//     (funcScope.captureIssues),
//   - which object graphs are registered as roots (snapRootCalls).

// simPkgPath is the kernel package every entry point hangs off.
const simPkgPath = "repro/internal/sim"

// schedEntry names one callback parameter of an engine-scheduling API:
// closures passed there run as engine events, so their captures are
// subject to the snapshot-safety contract.
type schedEntry struct {
	pkg, recv, meth string
	cbArgs          []int
}

// schedEntries is the audited list of ways a closure becomes an engine
// event: the kernel's own scheduling surface, the tracer's causal
// scheduler, and the resilience executor/renewer ops (which are invoked
// from engine callbacks).
var schedEntries = []schedEntry{
	{simPkgPath, "Engine", "Schedule", []int{1}},
	{simPkgPath, "Engine", "At", []int{1}},
	{simPkgPath, "Engine", "NewTimer", []int{0}},
	{simPkgPath, "Engine", "NewTicker", []int{1}},
	{simPkgPath, "Engine", "NewWindow", []int{2, 3}},
	{"repro/internal/obs", "Tracer", "Schedule", []int{2}},
	{"repro/internal/resilience", "Executor", "Do", []int{2, 3}},
	{"repro/internal/resilience", "Executor", "DoWithPolicy", []int{3, 4}},
	{"repro/internal/resilience", "Renewer", "Track", []int{4}},
}

// methodOf resolves call's callee as a method, returning the declaring
// package path, the (pointer-stripped) receiver type name, and the
// method name.
func methodOf(info *types.Info, call *ast.CallExpr) (pkgPath, recvName, methName string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", "", false
	}
	rt := sig.Recv().Type()
	if p, isPtr := rt.(*types.Pointer); isPtr {
		rt = p.Elem()
	}
	named, isNamed := rt.(*types.Named)
	if !isNamed {
		return "", "", "", false
	}
	return fn.Pkg().Path(), named.Obj().Name(), fn.Name(), true
}

// schedCallbackArgs returns the callback-argument expressions of call
// when call is one of the engine-scheduling entry points, nil otherwise.
func schedCallbackArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	pkgPath, recvName, methName, ok := methodOf(info, call)
	if !ok {
		return nil
	}
	for _, e := range schedEntries {
		if e.pkg == pkgPath && e.recv == recvName && e.meth == methName {
			var out []ast.Expr
			for _, i := range e.cbArgs {
				if i < len(call.Args) {
					out = append(out, call.Args[i])
				}
			}
			return out
		}
	}
	return nil
}

// snapRegCall reports whether call is Engine.SnapRoot or Engine.OnSnap.
func snapRegCall(info *types.Info, call *ast.CallExpr) (meth string, ok bool) {
	pkgPath, recvName, methName, isMeth := methodOf(info, call)
	if !isMeth || pkgPath != simPkgPath || recvName != "Engine" {
		return "", false
	}
	if methName == "SnapRoot" || methName == "OnSnap" {
		return methName, true
	}
	return "", false
}

// freeVars returns the variables used inside lit but declared outside
// it: the closure's captures, in first-use order. Package-level
// variables (snaproot's concern) and struct fields (reached through a
// captured base, which is itself a free variable) are excluded.
func freeVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal: event-local
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// funcScope is the analysis context for the closures of one function
// body (a FuncDecl body or an enclosing FuncLit body): the local
// func-literal bindings visible in it, and the set of callback literals
// whose interiors must not count as anchoring uses.
type funcScope struct {
	info *types.Info
	body ast.Node
	// localFns maps func-typed local variables to the literal bound to
	// them (x := func(){...}; var x = func(){...}; x = func(){...}),
	// enabling the one-call-level-deep analysis of named local closures.
	localFns map[*types.Var]*ast.FuncLit
	// capLits are the callback literals under audit: a use of a variable
	// inside one of them keeps the variable captive, so it does not count
	// as anchoring the variable to walker-reachable state.
	capLits []*ast.FuncLit
}

func newFuncScope(info *types.Info, body ast.Node) *funcScope {
	fs := &funcScope{info: info, body: body, localFns: map[*types.Var]*ast.FuncLit{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lit, ok := unparen(st.Rhs[i]).(*ast.FuncLit)
				if !ok {
					continue
				}
				v, ok := fs.objOf(id).(*types.Var)
				if ok && fs.localFns[v] == nil {
					fs.localFns[v] = lit
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				if i >= len(st.Values) {
					break
				}
				lit, ok := unparen(st.Values[i]).(*ast.FuncLit)
				if !ok {
					continue
				}
				v, ok := fs.info.Defs[id].(*types.Var)
				if ok && fs.localFns[v] == nil {
					fs.localFns[v] = lit
				}
			}
		}
		return true
	})
	return fs
}

// objOf resolves an identifier through Uses then Defs.
func (fs *funcScope) objOf(id *ast.Ident) types.Object {
	if o := fs.info.Uses[id]; o != nil {
		return o
	}
	return fs.info.Defs[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// expand returns lit plus every local func literal it references, one
// call level deep: a scheduled closure that invokes (or re-schedules) a
// named local closure shares that closure's captures.
func (fs *funcScope) expand(lit *ast.FuncLit) []*ast.FuncLit {
	out := []*ast.FuncLit{lit}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := fs.info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if l := fs.localFns[v]; l != nil && l != lit {
			for _, have := range out {
				if have == l {
					return true
				}
			}
			out = append(out, l)
		}
		return true
	})
	return out
}

func (fs *funcScope) insideCapLit(pos token.Pos) bool {
	for _, cl := range fs.capLits {
		if cl.Pos() <= pos && pos <= cl.End() {
			return true
		}
	}
	return false
}

// captureIssue is one walker-invisible capture of a scheduled closure.
type captureIssue struct {
	v    *types.Var
	kind string // "mutated" or "escaping"
}

// captureIssues classifies the free variables of the callback literals
// (a scheduled closure plus its depth-1 local closures) against the
// snapshot walker's reach:
//
//   - "mutated": a captured local the callbacks rebind (n++, x = ...),
//     or a value-typed captured local whose memory they write through a
//     field/index path. Closure variables live on the heap cell shared
//     with the enclosing function, which reflection cannot see, so a
//     Fork does not rewind them.
//   - "escaping": a pointer/map/slice created locally (x := &T{...},
//     make, new, a constructor call, Engine.ForkRand) that is never
//     anchored to anything outside the callbacks — no store into a
//     field/element, no pass to another call (SnapRoot included), no
//     return. Its pointee is reachable ONLY through the func value, so
//     the walker never captures it.
//
// Variables whose address is taken outside the callbacks are skipped:
// the alias may anchor them, and position reasoning says nothing more.
func (fs *funcScope) captureIssues(lits []*ast.FuncLit) []captureIssue {
	var issues []captureIssue
	seen := map[*types.Var]bool{}
	for _, lit := range lits {
		for _, v := range freeVars(fs.info, lit) {
			if seen[v] {
				continue
			}
			seen[v] = true
			if fs.localFns[v] != nil {
				continue // the named-closure binding itself (recursion idiom)
			}
			if kernelType(v.Type()) {
				continue // the engine and its handles self-capture
			}
			if fs.addrTakenOutside(v) {
				continue
			}
			if fs.writtenInside(v, lits) {
				issues = append(issues, captureIssue{v, "mutated"})
				continue
			}
			if fs.escapingCreation(v) {
				issues = append(issues, captureIssue{v, "escaping"})
			}
		}
	}
	return issues
}

// writtenInside reports whether any of the callback literals writes v:
// directly for any kind, or through a field/index path when v is a
// value type (writing through a captured pointer mutates the pointee,
// which is walker-reachable if anchored — the escaping check's job).
func (fs *funcScope) writtenInside(v *types.Var, lits []*ast.FuncLit) bool {
	valueKind := !isRefKind(v.Type())
	for _, lit := range lits {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if fs.writesVar(lhs, v, valueKind) {
						found = true
					}
				}
			case *ast.IncDecStmt:
				if fs.writesVar(st.X, v, valueKind) {
					found = true
				}
			case *ast.RangeStmt:
				if st.Tok == token.ASSIGN {
					if st.Key != nil && fs.writesVar(st.Key, v, valueKind) {
						found = true
					}
					if st.Value != nil && fs.writesVar(st.Value, v, valueKind) {
						found = true
					}
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// writesVar reports whether assigning through lhs writes variable v:
// a plain identifier is a direct rebind; a selector/index path rooted
// at v counts only when rooted (value-typed v).
func (fs *funcScope) writesVar(lhs ast.Expr, v *types.Var, rooted bool) bool {
	if id, ok := lhs.(*ast.Ident); ok {
		return fs.objOf(id) == v
	}
	if !rooted {
		return false
	}
	id := rootIdent(lhs)
	return id != nil && fs.objOf(id) == v
}

// kernelType reports whether t (possibly behind pointers) is declared in
// the sim kernel package. Captured engines, events, tickers, and windows
// are not snapshot hazards: Snapshot captures the kernel natively.
func kernelType(t types.Type) bool {
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == simPkgPath
}

// isRefKind reports whether t is a reference kind whose pointee/backing
// store the walker follows separately (so writes through it are the
// anchoring question, not the capture question).
func isRefKind(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// addrTakenOutside reports whether &v appears in the scope outside the
// callback literals.
func (fs *funcScope) addrTakenOutside(v *types.Var) bool {
	taken := false
	ast.Inspect(fs.body, func(n ast.Node) bool {
		if taken {
			return false
		}
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return true
		}
		if id, ok := unparen(u.X).(*ast.Ident); ok && fs.objOf(id) == v && !fs.insideCapLit(u.Pos()) {
			taken = true
		}
		return true
	})
	return taken
}

// escapingCreation reports whether v is fresh heap state born in this
// scope that never escapes it except through the callback literals.
func (fs *funcScope) escapingCreation(v *types.Var) bool {
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice:
	default:
		return false
	}
	return fs.locallyCreated(v) && !fs.anchored(v)
}

// locallyCreated reports whether v's defining statement allocates fresh
// state the walker could not already know about: &T{...}, make, new, a
// composite literal, a constructor from OUTSIDE the module (rand.New is
// the chaosRun-bug shape), or Engine.ForkRand (a fresh deterministic
// stream). Module-internal constructors are trusted to anchor their
// result themselves — core.Build registers the federation it returns —
// so their results don't count, and neither do parameters, range
// variables, method-call results, or copies of existing expressions.
func (fs *funcScope) locallyCreated(v *types.Var) bool {
	var rhs ast.Expr
	ast.Inspect(fs.body, func(n ast.Node) bool {
		if rhs != nil {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && fs.info.Defs[id] == v {
					rhs = st.Rhs[i]
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				if fs.info.Defs[id] == v && i < len(st.Values) && len(st.Values) == len(st.Names) {
					rhs = st.Values[i]
				}
			}
		}
		return true
	})
	switch e := unparen(rhs).(type) {
	case *ast.UnaryExpr:
		return e.Op == token.AND
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		switch fn := unparen(e.Fun).(type) {
		case *ast.Ident:
			if b, ok := fs.info.Uses[fn].(*types.Builtin); ok {
				return b.Name() == "make" || b.Name() == "new"
			}
			if f, ok := fs.info.Uses[fn].(*types.Func); ok {
				return foreignConstructor(f, v)
			}
		case *ast.SelectorExpr:
			if pkgPath, recvName, methName, ok := methodOf(fs.info, e); ok {
				return pkgPath == simPkgPath && recvName == "Engine" && methName == "ForkRand"
			}
			if f, ok := fs.info.Uses[fn.Sel].(*types.Func); ok {
				return foreignConstructor(f, v)
			}
		}
	}
	return false
}

// foreignConstructor reports whether f is a plain function from outside
// v's module (stdlib, vendored code) — its result is fresh state with no
// chance of having been anchored on the way out. Module-internal
// constructors are trusted to anchor what needs anchoring (core.Build
// SnapRoots the federation it returns), and methods return state their
// receiver already owns.
func foreignConstructor(f *types.Func, v *types.Var) bool {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil || f.Pkg() == nil || v.Pkg() == nil {
		return false
	}
	return firstPathSeg(f.Pkg().Path()) != firstPathSeg(v.Pkg().Path())
}

func firstPathSeg(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// anchored reports whether v is attached to anything outside the
// callback literals: passed to a call (SnapRoot included), stored into
// a field/element/package variable, returned, sent, or placed in a
// composite literal. Any of these makes the pointee plausibly reachable
// by the walker (or somebody else's responsibility); none of them
// leaves the state reachable only through the scheduled closure.
func (fs *funcScope) anchored(v *types.Var) bool {
	found := false
	isV := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && fs.objOf(id) == v
	}
	ast.Inspect(fs.body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.CallExpr:
			for _, a := range st.Args {
				if isV(a) && !fs.insideCapLit(a.Pos()) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if !isV(rhs) || fs.insideCapLit(rhs.Pos()) || i >= len(st.Lhs) {
					continue
				}
				switch lhs := st.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					_ = lhs
					found = true
				case *ast.Ident:
					if o, ok := fs.objOf(lhs).(*types.Var); ok && o.Pkg() != nil && o.Parent() == o.Pkg().Scope() {
						found = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if isV(r) && !fs.insideCapLit(r.Pos()) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if isV(e) && !fs.insideCapLit(e.Pos()) {
					found = true
				}
			}
		case *ast.IndexExpr:
			// Used as a map key (n.calls[c] = ...): map keys are walked
			// by the snapshot walker, so the pointee is reachable.
			if isV(st.Index) && !fs.insideCapLit(st.Index.Pos()) {
				found = true
			}
		case *ast.SendStmt:
			if isV(st.Value) && !fs.insideCapLit(st.Value.Pos()) {
				found = true // enginerace's problem; not unreachable state
			}
		}
		return true
	})
	return found
}

// funcRegions collects every function body in a file with its position
// range, for innermost-enclosure lookup.
type funcRegion struct {
	lo, hi token.Pos
	body   *ast.BlockStmt
}

func fileFuncRegions(f *ast.File) []funcRegion {
	var out []funcRegion
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Body != nil {
				out = append(out, funcRegion{v.Body.Pos(), v.Body.End(), v.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcRegion{v.Body.Pos(), v.Body.End(), v.Body})
		}
		return true
	})
	return out
}

// innermostRegion returns the smallest function body containing pos.
func innermostRegion(regions []funcRegion, pos token.Pos) *funcRegion {
	var best *funcRegion
	for i := range regions {
		r := &regions[i]
		if r.lo <= pos && pos <= r.hi && (best == nil || r.hi-r.lo < best.hi-best.lo) {
			best = r
		}
	}
	return best
}
