package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over type-checked packages. Most
// analyzers are per-package (Run); analyzers whose verdicts depend on
// facts spread across packages — e.g. "is this type registered as a
// snapshot root anywhere in the module" — implement RunAll instead and
// see every loaded package in a single pass. An analyzer sets exactly
// one of the two.
type Analyzer struct {
	Name   string // short lowercase name, used in diagnostics and directives
	Doc    string // one-line description
	Run    func(*Pass)
	RunAll func(*AllPass)
}

// Pass carries one analyzer's view of one package plus the report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	findings *[]Finding
}

// Reportf records a diagnostic at pos. The hint tells the developer how
// to restore the determinism contract; it is appended to the message.
func (p *Pass) Reportf(pos token.Pos, hint string, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// AllPass carries a whole-program analyzer's view of every loaded
// package plus the report sink.
type AllPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	findings *[]Finding
}

// Reportf records a diagnostic at pos, exactly as Pass.Reportf does.
func (p *AllPass) Reportf(pos token.Pos, hint string, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// Finding is one diagnostic.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	Hint     string         `json:"hint,omitempty"`
	// Suppressed marks a finding matched by a //gridlint:ignore
	// directive; the directive's reason is recorded for the audit trail.
	Suppressed   bool   `json:"suppressed,omitempty"`
	IgnoreReason string `json:"ignoreReason,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
	if f.Hint != "" {
		s += " (hint: " + f.Hint + ")"
	}
	return s
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WalltimeAnalyzer,
		GlobalrandAnalyzer,
		MaporderAnalyzer,
		ErrdropAnalyzer,
		JitterrandAnalyzer,
		EngineraceAnalyzer,
		SnapcaptureAnalyzer,
		SnapleafAnalyzer,
		SnaprootAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list ("walltime,errdrop")
// against the suite. An empty spec selects every analyzer.
func ByName(spec string) ([]*Analyzer, error) {
	all := Analyzers()
	if spec == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Result is the outcome of running a suite over a set of packages.
type Result struct {
	// Active findings, sorted by position: these fail the build.
	Findings []Finding
	// Suppressed findings, each carrying its directive's reason.
	Suppressed []Finding
}

// Run executes the analyzers over the packages, applies
// //gridlint:ignore directives, and reports directive hygiene problems
// (unknown analyzer names, missing reasons, directives that suppress
// nothing) as findings of the synthetic "directive" analyzer.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) Result {
	var all []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, findings: &all}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunAll == nil {
			continue
		}
		a.RunAll(&AllPass{Analyzer: a, Fset: fset, Pkgs: pkgs, findings: &all})
	}

	run := map[string]bool{}
	for _, a := range analyzers {
		run[a.Name] = true
	}
	var res Result
	for _, pkg := range pkgs {
		dirs, errs := directives(fset, pkg)
		for _, err := range errs {
			res.Findings = append(res.Findings, err)
		}
		for _, d := range dirs {
			if !run[d.Analyzer] {
				continue // analyzer not selected this run; can't judge use
			}
			used := false
			for i := range all {
				f := &all[i]
				if f.Suppressed || f.Analyzer != d.Analyzer {
					continue
				}
				if f.Pos.Filename == d.File && (f.Pos.Line == d.Line || f.Pos.Line == d.Line+1) {
					f.Suppressed = true
					f.IgnoreReason = d.Reason
					used = true
				}
			}
			if !used {
				res.Findings = append(res.Findings, Finding{
					Analyzer: "directive",
					Pos:      token.Position{Filename: d.File, Line: d.Line},
					Message:  fmt.Sprintf("//gridlint:ignore %s directive suppresses nothing", d.Analyzer),
					Hint:     "delete the stale directive",
				})
			}
		}
	}
	for _, f := range all {
		if f.Suppressed {
			res.Suppressed = append(res.Suppressed, f)
		} else {
			res.Findings = append(res.Findings, f)
		}
	}
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
}

// ---- shared AST/type helpers used by the analyzers ----

// pkgFunc reports whether call's callee is the package-level function
// pkgPath.name, resolved through the type checker (so renamed imports
// and shadowed identifiers are handled correctly).
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names map[string]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[base].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	if names == nil || names[sel.Sel.Name] {
		return sel.Sel.Name, true
	}
	return "", false
}

// rootIdent returns the leftmost identifier of an expression like
// x, x.f.g, or x[i], or nil when the expression has no identifier root.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// definedWithin reports whether the identifier's object is declared
// inside [lo, hi] — i.e. whether it is local to that region.
func definedWithin(info *types.Info, id *ast.Ident, lo, hi token.Pos) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= lo && obj.Pos() <= hi
}
