package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SnaprootAnalyzer is the cross-package closure of the snapshot-safety
// contract: every piece of mutable state that engine events touch must
// be reachable from some Engine.SnapRoot registration — its own, or the
// core.Build federation mega-root — or be saved by an explicit OnSnap
// hook. snapcapture proves scheduled closures don't smuggle state in
// captures; snaproot proves the state they do touch (named struct state
// through captured pointers and receivers, package-level variables) is
// in the walker's reach at all.
//
// Mechanics: the analyzer collects every SnapRoot call in the loaded
// packages, walks the static type graph of each root argument (fields,
// pointers, slices/arrays, map keys and values; non-empty interface
// fields expand to every loaded named type implementing them) into a
// REACHABLE set, then audits every engine-scheduled callback in
// internal/ packages. A callback's mutation targets are the named types
// behind field/index writes through captured variables and receivers,
// the receiver types of methods it calls (one level deep), and any
// package-level variables it writes. Targets declared in the sim kernel
// are exempt (Snapshot captures the kernel natively), as are targets in
// packages that install an OnSnap hook. If no SnapRoot call is in view
// at all the analyzer stays silent: reachability cannot be judged on a
// partial load.
var SnaprootAnalyzer = &Analyzer{
	Name:   "snaproot",
	Doc:    "engine events mutate state not reachable from any SnapRoot registration",
	RunAll: runSnaproot,
}

type methodInfo struct {
	decl *ast.FuncDecl
	info *types.Info
}

// snaprootCtx keys every cross-package fact by stable strings
// (package path + name), never by types.Object identity: the loader
// type-checks directly-loaded packages and imported packages as
// separate checker runs, so the "same" type is represented by distinct
// objects depending on which package's Info resolved it.
type snaprootCtx struct {
	pass       *AllPass
	reachable  map[string]bool // objKey of reachable named types
	rootVars   map[string]bool // objKey of SnapRoot'd package variables
	onSnapPkgs map[string]bool
	loadedPkgs map[string]bool
	funcDecls  map[string]*methodInfo // funcKey -> declaration
	seenTypes  map[string]bool
	allNamed   []*types.Named
}

// objKey names a package-scope object portably across checker runs.
func objKey(obj types.Object) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// funcKey names a function or method portably across checker runs.
func funcKey(fn *types.Func) string {
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			recv = named.Obj().Name()
		}
	}
	return objKey(fn) + "(" + recv + ")"
}

func runSnaproot(pass *AllPass) {
	c := &snaprootCtx{
		pass:       pass,
		reachable:  map[string]bool{},
		rootVars:   map[string]bool{},
		onSnapPkgs: map[string]bool{},
		loadedPkgs: map[string]bool{},
		funcDecls:  map[string]*methodInfo{},
		seenTypes:  map[string]bool{},
	}
	sites := collectSnapRoots(pass.Pkgs)
	if len(sites) == 0 {
		return // no registrations in view: partial load, cannot judge
	}
	for _, pkg := range pass.Pkgs {
		c.loadedPkgs[pkg.Path] = true
		c.indexPkg(pkg)
	}
	for _, s := range sites {
		c.grow(s.typ)
		if s.rootVar != nil {
			c.rootVars[objKey(s.rootVar)] = true
		}
	}

	// Audit scheduling packages in path order so the first finding per
	// target is deterministic.
	ordered := append([]*Package(nil), pass.Pkgs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Path < ordered[j].Path })
	flagged := map[string]bool{}
	for _, pkg := range ordered {
		if !strings.Contains(pkg.Path, "/internal/") || pkg.Path == simPkgPath {
			continue
		}
		c.auditPkg(pkg, flagged)
	}
}

// indexPkg records every function/method declaration (for depth-1 body
// scans), every named type (for interface expansion), and whether the
// package installs an OnSnap hook.
func (c *snaprootCtx) indexPkg(pkg *Package) {
	info := pkg.Info
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
			if named, ok := tn.Type().(*types.Named); ok {
				c.allNamed = append(c.allNamed, named)
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if fn, ok := info.Defs[v.Name].(*types.Func); ok && v.Body != nil {
					c.funcDecls[funcKey(fn)] = &methodInfo{decl: v, info: info}
				}
			case *ast.CallExpr:
				if meth, ok := snapRegCall(info, v); ok && meth == "OnSnap" {
					c.onSnapPkgs[pkg.Path] = true
				}
			}
			return true
		})
	}
}

// grow adds t's static type graph to the REACHABLE set.
func (c *snaprootCtx) grow(t types.Type) {
	if c.seenTypes[t.String()] {
		return
	}
	c.seenTypes[t.String()] = true
	if named, ok := t.(*types.Named); ok {
		c.reachable[objKey(named.Obj())] = true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		c.grow(u.Elem())
	case *types.Slice:
		c.grow(u.Elem())
	case *types.Array:
		c.grow(u.Elem())
	case *types.Map:
		c.grow(u.Key())
		c.grow(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			c.grow(u.Field(i).Type())
		}
	case *types.Interface:
		if u.Empty() {
			return // `any` would make everything reachable; vacuous
		}
		for _, named := range c.allNamed {
			if types.Implements(named, u) || types.Implements(types.NewPointer(named), u) {
				c.grow(named)
			}
		}
	}
}

// auditPkg flags the first scheduling site per unregistered mutation
// target in pkg.
func (c *snaprootCtx) auditPkg(pkg *Package, flagged map[string]bool) {
	info := pkg.Info
	for _, f := range pkg.Files {
		regions := fileFuncRegions(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			cbs := schedCallbackArgs(info, call)
			if len(cbs) == 0 {
				return true
			}
			r := innermostRegion(regions, call.Pos())
			if r == nil {
				return true
			}
			fs := newFuncScope(info, r.body)
			for _, cb := range cbs {
				for _, target := range c.callbackTargets(fs, cb) {
					if flagged[objKey(target)] {
						continue
					}
					flagged[objKey(target)] = true
					c.report(cb.Pos(), pkg.Path, target)
				}
			}
			return true
		})
	}
}

// callbackTargets resolves a callback expression and collects its
// mutation targets: named types and package variables the event writes
// that the snapshot walker must be able to reach.
func (c *snaprootCtx) callbackTargets(fs *funcScope, cb ast.Expr) []types.Object {
	var targets []types.Object
	seen := map[types.Object]bool{}
	add := func(obj types.Object) {
		if obj == nil || seen[obj] {
			return
		}
		pkg := obj.Pkg()
		if pkg == nil || pkg.Path() == simPkgPath {
			return // kernel state is snapshotted natively
		}
		if !c.loadedPkgs[pkg.Path()] || c.onSnapPkgs[pkg.Path()] {
			return // out of view, or saved by an explicit hook
		}
		if c.reachable[objKey(obj)] || c.rootVars[objKey(obj)] {
			return
		}
		seen[obj] = true
		targets = append(targets, obj)
	}

	switch e := unparen(cb).(type) {
	case *ast.FuncLit:
		for _, lit := range fs.expand(e) {
			c.scanBody(fs.info, lit.Body, lit.Pos(), lit.End(), 0, add)
		}
	case *ast.Ident:
		if v, ok := fs.info.Uses[e].(*types.Var); ok {
			if lit := fs.localFns[v]; lit != nil {
				for _, l := range fs.expand(lit) {
					c.scanBody(fs.info, l.Body, l.Pos(), l.End(), 0, add)
				}
			}
		} else if fn, ok := fs.info.Uses[e].(*types.Func); ok {
			c.scanFunc(fn, add)
		}
	case *ast.SelectorExpr:
		// Method value: the event runs fn on the selected receiver.
		if fn, ok := fs.info.Uses[e.Sel].(*types.Func); ok {
			c.scanFunc(fn, add)
		}
	}
	return targets
}

// scanFunc scans a named function or method body for mutation targets:
// writes through its receiver and parameters (state that outlives the
// call) and package-level variables.
func (c *snaprootCtx) scanFunc(fn *types.Func, add func(types.Object)) {
	mi := c.funcDecls[funcKey(fn)]
	if mi == nil {
		return // declared outside the loaded packages
	}
	body := mi.decl.Body
	c.scanBody(mi.info, body, body.Pos(), body.End(), 1, add)
}

// scanBody walks one callback body. Writes whose root variable is
// declared inside [lo, hi] are event-local and ignored; writes through
// captured variables, receivers, or parameters target the root's named
// type; writes to package variables target the variable. Method calls
// on non-local roots recurse one level (depth 0 → 1 only).
func (c *snaprootCtx) scanBody(info *types.Info, body ast.Node, lo, hi token.Pos, depth int, add func(types.Object)) {
	addWrite := func(lhs ast.Expr) {
		id := rootIdent(lhs)
		if id == nil {
			return
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			v, ok = info.Defs[id].(*types.Var)
			if !ok {
				return
			}
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			add(v) // package-level variable
			return
		}
		if _, plain := unparen(lhs).(*ast.Ident); plain {
			return // local rebind: snapcapture's domain
		}
		if v.Pos() >= lo && v.Pos() <= hi {
			return // event-local state dies with the event
		}
		t := v.Type()
		for {
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		if named, ok := t.(*types.Named); ok {
			add(named.Obj())
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				addWrite(lhs)
			}
		case *ast.IncDecStmt:
			addWrite(st.X)
		case *ast.RangeStmt:
			if st.Tok == token.ASSIGN {
				if st.Key != nil {
					addWrite(st.Key)
				}
				if st.Value != nil {
					addWrite(st.Value)
				}
			}
		case *ast.CallExpr:
			if depth >= 1 {
				return true
			}
			sel, ok := st.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				return true // package function call: not followed
			}
			if id := rootIdent(sel.X); id != nil {
				if v, ok := info.Uses[id].(*types.Var); ok && v.Pos() >= lo && v.Pos() <= hi {
					return true // method on event-local state
				}
			}
			c.scanFunc(fn, add)
		}
		return true
	})
}

func (c *snaprootCtx) report(pos token.Pos, pkgPath string, target types.Object) {
	kind := "type"
	if _, ok := target.(*types.Var); ok {
		kind = "package variable"
	}
	c.pass.Reportf(pos,
		"register it with Engine.SnapRoot or hang it off the core.Build federation root",
		"engine event scheduled in %s mutates %s %s.%s, which is not reachable from any SnapRoot registration: Fork will not rewind it",
		pkgPath, kind, target.Pkg().Name(), target.Name())
}
