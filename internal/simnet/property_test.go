package simnet

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

// TestFlowConservationProperty: for arbitrary concurrent flow sets, every
// byte is eventually delivered (all flows complete when no failures are
// injected), aggregate goodput never exceeds the sum of access-link
// capacities, and completion order respects work/capacity feasibility.
func TestFlowConservationProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		eng := sim.NewEngine(7)
		n := New(eng)
		n.AddSite("A", 0, 0)
		n.AddSite("B", 30, 0)
		n.AddSite("C", 10, 20)
		hosts := []string{"hA", "hB", "hC"}
		linkBps := 1e6
		n.AddHost("hA", "A", linkBps)
		n.AddHost("hB", "B", linkBps)
		n.AddHost("hC", "C", linkBps)

		type result struct {
			bytes float64
			dur   time.Duration
		}
		var results []result
		total := 0.0
		count := 0
		for i := 0; i+2 < len(raw) && count < 12; i += 3 {
			src := hosts[int(raw[i])%3]
			dst := hosts[int(raw[i+1])%3]
			if src == dst {
				continue
			}
			bytes := float64(int(raw[i+2])%100+1) * 1e4
			streams := int(raw[i])%3 + 1
			total += bytes
			count++
			_, err := n.StartFlow(src, dst, bytes, FlowOpts{Streams: streams}, func(fl *Flow) {
				results = append(results, result{bytes: fl.Bytes, dur: fl.Duration()})
			})
			if err != nil {
				return false
			}
		}
		eng.Run()
		if len(results) != count {
			return false // a flow never completed
		}
		delivered := 0.0
		for _, r := range results {
			delivered += r.bytes
			// A flow can never beat its own bottleneck link.
			if r.dur > 0 && r.bytes/r.dur.Seconds() > linkBps*1.001 {
				return false
			}
		}
		// Conservation: exactly the submitted bytes were delivered.
		if delivered < total*0.999 || delivered > total*1.001 {
			return false
		}
		// Aggregate goodput bound: total bytes / makespan cannot exceed
		// the bisection capacity (3 uplinks).
		if eng.Now() > 0 && total/eng.Now().Seconds() > 3*linkBps*1.001 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFlowDeterminismProperty: identical flow programs produce identical
// completion times.
func TestFlowDeterminismProperty(t *testing.T) {
	run := func(raw []uint8) []time.Duration {
		eng := sim.NewEngine(5)
		n := New(eng)
		n.AddSite("A", 0, 0)
		n.AddSite("B", 25, 5)
		n.AddHost("a", "A", 2e6)
		n.AddHost("b", "B", 1e6)
		n.SetLoss("A", "B", 0.002)
		var ends []time.Duration
		for i := 0; i+1 < len(raw) && i < 16; i += 2 {
			bytes := float64(int(raw[i])%50+1) * 1e4
			streams := int(raw[i+1])%4 + 1
			n.StartFlow("a", "b", bytes, FlowOpts{Streams: streams}, func(fl *Flow) {
				ends = append(ends, eng.Now())
			})
		}
		eng.Run()
		return ends
	}
	f := func(raw []uint8) bool {
		x, y := run(raw), run(raw)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestManyFlowsScale exercises the fluid engine with a few hundred
// concurrent flows as a smoke-scale guard.
func TestManyFlowsScale(t *testing.T) {
	eng := sim.NewEngine(2)
	n := New(eng)
	for s := 0; s < 10; s++ {
		n.AddSite(fmt.Sprintf("S%d", s), float64(s*7), float64((s*13)%31))
		n.AddHost(fmt.Sprintf("h%d", s), fmt.Sprintf("S%d", s), 1e6)
	}
	done, started := 0, 0
	for i := 0; i < 300; i++ {
		src := fmt.Sprintf("h%d", i%10)
		dst := fmt.Sprintf("h%d", (i+1+i/10)%10)
		if src == dst {
			continue
		}
		started++
		if _, err := n.StartFlow(src, dst, 1e5+float64(i)*1e3, FlowOpts{Streams: 1 + i%3},
			func(*Flow) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if done != started {
		t.Errorf("completed %d of %d flows", done, started)
	}
}
