package simnet

// Regression tests for the loss-churn and accounting fixes: live streams
// must track loss/latency changes (stale Mathis caps), BytesSent must
// reflect bytes actually moved (not the full size charged up-front), and
// the flow counters must conserve across every exit path.

import (
	"math"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// lossyPair builds a two-site network with one host on each side and
// fat access links, so the Mathis cap (not the links) is the binding
// constraint whenever loss is present.
func lossyPair(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine(1)
	n := New(eng)
	n.AddSite("A", 0, 0)
	n.AddSite("B", 30, 0)
	n.AddHost("a1", "A", 1e8)
	n.AddHost("b1", "B", 1e8)
	return eng, n
}

// TestLossBurstRetunesLiveFlow pins the stale-limit fix: a loss burst
// arriving mid-transfer must slow the live stream to the Mathis cap for
// the new loss rate, and clearing the burst must restore the original
// rate — previously in-flight flows kept the cap computed at start.
func TestLossBurstRetunesLiveFlow(t *testing.T) {
	eng, n := lossyPair(t)
	f, err := n.StartFlow("a1", "b1", 1e9, FlowOpts{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(time.Second)
	st := f.order[0]
	before := st.Rate()
	if before != 1e8 {
		t.Fatalf("lossless rate %v, want link capacity 1e8", before)
	}

	n.SetLoss("A", "B", 0.02)
	want := n.pathLimit(f.pathOf[st].segs)
	if got := st.Rate(); got != want || got >= before {
		t.Fatalf("rate under loss burst %v, want Mathis cap %v (< %v)", got, want, before)
	}

	n.ClearLoss("A", "B")
	if got := st.Rate(); got != before {
		t.Fatalf("rate after clearing burst %v, want restored %v", got, before)
	}
}

// TestLatencyChurnRetunesLiveFlow: with loss present, a latency change
// moves the Mathis cap (BW ∝ 1/RTT) of a live stream in both directions.
func TestLatencyChurnRetunesLiveFlow(t *testing.T) {
	eng, n := lossyPair(t)
	n.BaseLoss = 0.01
	f, err := n.StartFlow("a1", "b1", 1e9, FlowOpts{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(time.Second)
	st := f.order[0]
	before := st.Rate()

	n.SetLatency("A", "B", 200*time.Millisecond)
	if got := st.Rate(); got >= before {
		t.Fatalf("rate after RTT increase %v, want < %v", got, before)
	}
	n.ClearLatency("A", "B")
	if got := st.Rate(); got != before {
		t.Fatalf("rate after clearing latency override %v, want restored %v", got, before)
	}
}

// TestAbortSettlesBytesSent pins the accounting fix: BytesSent must
// reflect the bytes a flow actually moved when it is aborted mid-flight,
// not the full size charged at start.
func TestAbortSettlesBytesSent(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	n.AddSite("A", 0, 0)
	n.AddSite("B", 30, 0)
	n.AddHost("a1", "A", 1e5)
	n.AddHost("b1", "B", 1e5)

	f, err := n.StartFlow("a1", "b1", 1e6, FlowOpts{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Host("a1").BytesSent; got != 0 {
		t.Fatalf("BytesSent charged %v at start, want 0 until bytes move", got)
	}
	eng.RunUntil(2 * time.Second) // 1e5 B/s for 2s → 2e5 of 1e6 moved
	f.Abort()
	got := n.Host("a1").BytesSent
	if math.Abs(got-2e5) > 1 {
		t.Fatalf("BytesSent after mid-flight abort = %v, want ~2e5", got)
	}
	if n.ActiveFlows() != 0 {
		t.Fatalf("aborted flow still active")
	}

	// A flow that runs to completion credits exactly its size on top.
	if _, err := n.StartFlow("a1", "b1", 1e6, FlowOpts{}, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if total := n.Host("a1").BytesSent; math.Abs(total-(2e5+1e6)) > 1 {
		t.Fatalf("BytesSent after completed flow = %v, want ~%v", total, 2e5+1e6)
	}
}

// TestFlowCounterConservation drives seeded churn through every flow
// exit path — completion, host-down kill, partition kill, user abort —
// and checks the conservation identity the counters must maintain:
// started = done + failed + aborted + active. Before the cFlowAbort
// counter, user aborts leaked out of the identity entirely.
func TestFlowCounterConservation(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		eng := sim.NewEngine(seed)
		n := New(eng)
		n.SetTracer(obs.NewTracer(eng))
		n.BaseLoss = 0.01
		n.AddSite("A", 0, 0)
		n.AddSite("B", 30, 0)
		n.AddSite("C", 0, 40)
		for _, h := range []struct{ name, site string }{
			{"a1", "A"}, {"a2", "A"}, {"b1", "B"}, {"b2", "B"}, {"c1", "C"},
		} {
			n.AddHost(h.name, h.site, 1e6)
		}
		rng := eng.ForkRand()
		var live []*Flow
		eng.NewTicker(3*time.Second, func() {
			switch rng.Intn(6) {
			case 0, 1, 2:
				from := []string{"a1", "a2"}[rng.Intn(2)]
				to := []string{"b1", "b2", "c1"}[rng.Intn(3)]
				fl, err := n.StartFlow(from, to, 1e5+float64(rng.Intn(int(3e6))), FlowOpts{
					Streams: 1 + rng.Intn(3),
					Pooled:  rng.Intn(2) == 0,
				}, nil)
				if err == nil {
					live = append(live, fl)
				}
			case 3:
				if len(live) > 0 {
					live[rng.Intn(len(live))].Abort()
				}
			case 4:
				n.Partition("A", "B", rng.Intn(2) == 0)
			default:
				host := []string{"b1", "c1"}[rng.Intn(2)]
				n.SetDown(host, rng.Intn(2) == 0)
			}
		})
		eng.RunUntil(5 * time.Minute)

		started := n.cFlowStart.Value()
		balance := n.cFlowDone.Value() + n.cFlowFail.Value() + n.cFlowAbort.Value() + uint64(n.ActiveFlows())
		if started != balance {
			t.Fatalf("seed %d: started=%d ≠ done=%d + failed=%d + aborted=%d + active=%d",
				seed, started, n.cFlowDone.Value(), n.cFlowFail.Value(), n.cFlowAbort.Value(), n.ActiveFlows())
		}
		if started == 0 {
			t.Fatalf("seed %d: no flows started, test is vacuous", seed)
		}
	}
}
