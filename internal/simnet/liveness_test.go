package simnet

import (
	"errors"
	"testing"
	"time"
)

// TestCallTimeoutEventCancelled is the regression test for the timeout
// leak: a completed Call must cancel its pending timeout event, so the
// heap holds O(in-flight) events, not O(total calls). Before the fix,
// 10k completed calls with 30s timeouts left 10k dead events queued.
func TestCallTimeoutEventCancelled(t *testing.T) {
	eng, n := testNet(t, 1)
	n.Host("b1").Handle("echo", func(_ string, req any) (any, error) { return req, nil })
	const calls = 10000
	completed := 0
	for i := 0; i < calls; i++ {
		n.Call("a1", "b1", "echo", i, 30*time.Second, func(_ any, err error) {
			if err != nil {
				t.Errorf("call failed: %v", err)
			}
			completed++
		})
		eng.Run() // drain: the call completes long before its timeout
	}
	if completed != calls {
		t.Fatalf("completed %d of %d calls", completed, calls)
	}
	// The queue is drained, so nothing at all should be pending; the bound
	// is deliberately loose to only catch O(total-calls) leaks.
	if p := eng.Pending(); p > 16 {
		t.Errorf("Pending() = %d after %d completed calls, want O(in-flight)", p, calls)
	}
}

// TestCallTimeoutStillFiresOnLoss checks the cancel does not break the
// timeout path itself: a lost request must still surface ErrTimeout.
func TestCallTimeoutStillFiresOnLoss(t *testing.T) {
	eng, n := testNet(t, 1)
	n.SetLoss("A", "B", 0.999999)
	n.Host("b1").Handle("svc", func(string, any) (any, error) { return "ok", nil })
	var err error
	n.Call("a1", "b1", "svc", nil, 200*time.Millisecond, func(_ any, e error) { err = e })
	eng.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if p := eng.Pending(); p != 0 {
		t.Errorf("Pending() = %d after timeout, want 0", p)
	}
}

// TestCallNoHandlerCrashedCaller is the regression test for the
// asymmetric refusal path: a caller that crashes mid-call must not
// receive "connection refused", and the refusal reply must be counted
// like any other response message.
func TestCallNoHandlerCrashedCaller(t *testing.T) {
	eng, n := testNet(t, 1)
	got := false
	n.Call("a1", "b1", "nosuch", nil, 0, func(_ any, err error) {
		got = true
	})
	// Crash the caller while the request (or the refusal) is in flight.
	eng.RunUntil(40 * time.Millisecond)
	n.SetDown("a1", true)
	eng.Run()
	if got {
		t.Fatal("crashed caller received a reply")
	}
	if sent := n.Host("b1").MsgsSent; sent != 1 {
		t.Errorf("refusing host MsgsSent = %d, want 1 (refusal is a control message)", sent)
	}
	if recv := n.Host("a1").MsgsRecv; recv != 0 {
		t.Errorf("crashed caller MsgsRecv = %d, want 0", recv)
	}
}

// TestCallNoHandlerCounted: on the happy (alive-caller) path the refusal
// must be accounted symmetrically with a normal response.
func TestCallNoHandlerCounted(t *testing.T) {
	eng, n := testNet(t, 1)
	var err error
	n.Call("a1", "b1", "nosuch", nil, time.Second, func(_ any, e error) { err = e })
	eng.Run()
	if !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
	if recv := n.Host("a1").MsgsRecv; recv != 1 {
		t.Errorf("caller MsgsRecv = %d, want 1", recv)
	}
}

// TestSendPartitionMidFlight is the regression test for send-time-only
// partition checks: a one-way message already in flight must be severed
// by a cut that lands before its arrival, like data flows are.
func TestSendPartitionMidFlight(t *testing.T) {
	eng, n := testNet(t, 1)
	delivered := false
	n.Host("b1").Handle("svc", func(string, any) (any, error) {
		delivered = true
		return nil, nil
	})
	n.Send("a1", "b1", "svc", "payload") // 31ms in flight
	eng.RunUntil(10 * time.Millisecond)
	n.Partition("A", "B", true)
	eng.Run()
	if delivered {
		t.Fatal("message delivered across a partition that landed mid-flight")
	}
	if recv := n.Host("b1").MsgsRecv; recv != 0 {
		t.Errorf("MsgsRecv = %d, want 0", recv)
	}

	// Healing the cut restores delivery for new sends.
	n.Partition("A", "B", false)
	n.Send("a1", "b1", "svc", "again")
	eng.Run()
	if !delivered {
		t.Fatal("message not delivered after heal")
	}
}
