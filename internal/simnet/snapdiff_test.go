package simnet

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/sim/snaptest"
)

// snapDriver is the differential scenario's workload state, hoisted into
// a SnapRoot-registered struct per the snapshot-safety contract: the
// event log, the request counter, and the workload rng must all rewind
// with the network on Fork, so none of them may live in ticker captures.
type snapDriver struct {
	net *Network
	rng *rand.Rand
	log []string
	seq int
}

func (d *snapDriver) emit(format string, args ...any) {
	d.log = append(d.log, fmt.Sprintf("%v ", d.net.Engine().Now())+fmt.Sprintf(format, args...))
}

// tick drives one round of control- and data-plane churn: RPCs against
// two targets, periodic partitions and host outages so calls time out
// and flows die mid-transfer, and bulk flows with rng-drawn sizes.
func (d *snapDriver) tick() {
	d.seq++
	id := d.seq
	switch id % 7 {
	case 2:
		d.net.Partition("A", "B", true)
		d.emit("cut A-B")
	case 4:
		d.net.Partition("A", "B", false)
		d.emit("heal A-B")
	case 6:
		down := !d.net.Host("c1").Down()
		d.net.SetDown("c1", down)
		d.emit("c1 down=%v", down)
	}
	to := "b1"
	if id%3 == 0 {
		to = "c1"
	}
	d.net.Call("a1", to, "echo", id, 20*time.Second, func(resp any, err error) {
		d.emit("call %d->%s resp=%v err=%v", id, to, resp, err)
	})
	if id%4 == 0 {
		size := 200_000 + float64(d.rng.Intn(200_000))
		fl, err := d.net.StartFlow("a1", "b1", size, FlowOpts{Streams: 1 + id%2}, func(*Flow) {
			d.emit("flow %d done bytes=%.0f", id, size)
		})
		if err != nil {
			d.emit("flow %d refused err=%v", id, err)
			return
		}
		fl.OnFail = func(_ *Flow, e error) { d.emit("flow %d fail err=%v", id, e) }
	}
}

func buildSimnetDiff(seed int64) (*sim.Engine, func() []byte) {
	eng := sim.NewEngine(seed)
	n := New(eng)
	n.BaseLoss = 0.05
	n.AddSite("A", 0, 0)
	n.AddSite("B", 30, 0)
	n.AddSite("C", 0, 40)
	n.AddHost("a1", "A", 1e6)
	n.AddHost("b1", "B", 1e6)
	n.AddHost("c1", "C", 1e6)
	echo := func(from string, req any) (any, error) { return req, nil }
	n.Host("b1").Handle("echo", echo)
	n.Host("c1").Handle("echo", echo)
	d := &snapDriver{net: n, rng: eng.ForkRand()}
	eng.SnapRoot("simnet.snapdiff", d)
	eng.NewTicker(30*time.Second, d.tick)
	render := func() []byte {
		var b bytes.Buffer
		for _, ln := range d.log {
			fmt.Fprintln(&b, ln)
		}
		a := n.Host("a1")
		fmt.Fprintf(&b, "a1 sent=%d recv=%d bytes=%.0f\n", a.MsgsSent, a.MsgsRecv, a.BytesSent)
		return b.Bytes()
	}
	return eng, render
}

// TestForkVsColdSimnet is simnet's adoption of the snaptest scenario
// hook: with calls in flight, flows mid-transfer, partitions toggling,
// and loss draws pending, a forked run must be byte-identical to a cold
// one — proving every piece of network state (calls map, flow set,
// fluid system, rng) is in the snapshot walker's reach.
func TestForkVsColdSimnet(t *testing.T) {
	n := 20
	if testing.Short() {
		n = 4
	}
	snaptest.Scenario{
		Name:      "simnet.churn",
		Build:     buildSimnetDiff,
		WarmUntil: 10 * time.Minute,
		Horizon:   40 * time.Minute,
	}.Run(t, snaptest.Seeds(1, n))
}
