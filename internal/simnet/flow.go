package simnet

import (
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// FlowOpts configures a bulk data transfer.
type FlowOpts struct {
	// Streams is the number of parallel TCP streams (GridFTP-style
	// striping). Zero means 1.
	Streams int
	// Paths lists overlay routes as sequences of relay host names
	// (excluding the endpoints). An empty entry, or an empty Paths, means
	// the direct path. Streams are spread round-robin across paths.
	Paths [][]string
	// Pooled makes streams share one byte pool mTCP-style: when a stream
	// finishes early, it steals half of the largest remaining backlog, so
	// fast paths carry more bytes. Without it the split is static, as in
	// block-partitioned striped GridFTP.
	Pooled bool
	// Weight scales the flow's share against competing flows (default 1).
	Weight float64
}

// Flow is an in-progress or completed bulk transfer.
type Flow struct {
	net    *Network
	From   string
	To     string
	Bytes  float64
	OnDone func(*Flow)
	// OnFail fires when the flow is killed by a host failure along its
	// path (SetDown). Abort does not trigger it.
	OnFail func(*Flow, error)

	opts      FlowOpts
	streams   map[*sim.FluidConsumer][]*sim.FluidResource // consumer -> its path resources
	pathOf    map[*sim.FluidConsumer]pathInfo
	order     []*sim.FluidConsumer // live streams in creation order (determinism)
	seq       uint64               // creation sequence within the network
	active    int
	begun     time.Duration
	ended     time.Duration
	done      bool
	aborted   bool
	netstream int             // total streams ever created, for naming
	hosts     map[string]bool // endpoints and relays, for failure kills
	span      obs.SpanContext // open while the flow is in progress
}

type pathInfo struct {
	resources []*sim.FluidResource
	// crossings are the (sorted) site pairs the path's hops traverse, so a
	// partition can identify exactly the streams it severs.
	crossings [][2]string
	// segs are the hop site pairs in path order (intra-site hops
	// included), kept so the Mathis limit can be re-derived from current
	// loss and latency whenever either changes mid-transfer.
	segs [][2]string
}

func (pi pathInfo) crosses(key [2]string) bool {
	for _, c := range pi.crossings {
		if c == key {
			return true
		}
	}
	return false
}

// StartFlow begins transferring bytes from one host to another and returns
// the flow handle. The flow's OnDone callback (set via opts on the returned
// Flow before the engine next runs, or passed as onDone) fires at
// completion. Errors are returned synchronously for unusable paths.
func (n *Network) StartFlow(from, to string, bytes float64, opts FlowOpts, onDone func(*Flow)) (*Flow, error) {
	src, dst := n.hosts[from], n.hosts[to]
	if src == nil || dst == nil {
		return nil, ErrNoSuchHost
	}
	if src.downFlag || dst.downFlag {
		return nil, ErrHostDown
	}
	if bytes <= 0 {
		return nil, fmt.Errorf("simnet: flow of %v bytes", bytes)
	}
	if opts.Streams <= 0 {
		opts.Streams = 1
	}
	if opts.Weight <= 0 {
		opts.Weight = 1
	}
	if len(opts.Paths) == 0 {
		opts.Paths = [][]string{nil}
	}

	// Resolve each path to its resource chain and TCP limit.
	paths := make([]pathInfo, 0, len(opts.Paths))
	for _, relays := range opts.Paths {
		pi, err := n.resolvePath(src, dst, relays)
		if err != nil {
			return nil, err
		}
		paths = append(paths, pi)
	}

	n.flowSeq++
	f := &Flow{
		net:     n,
		From:    from,
		To:      to,
		Bytes:   bytes,
		seq:     n.flowSeq,
		opts:    opts,
		streams: make(map[*sim.FluidConsumer][]*sim.FluidResource),
		pathOf:  make(map[*sim.FluidConsumer]pathInfo),
		begun:   n.eng.Now(),
		OnDone:  onDone,
	}
	f.hosts = map[string]bool{from: true, to: true}
	for _, relays := range opts.Paths {
		for _, r := range relays {
			f.hosts[r] = true
		}
	}
	n.active[f] = struct{}{}
	n.cFlowStart.Inc()
	if n.tr != nil {
		f.span = n.tr.Begin("net.flow",
			obs.String("from", from), obs.String("to", to),
			obs.Float("bytes", bytes), obs.Int("streams", opts.Streams))
	}

	per := bytes / float64(opts.Streams)
	for i := 0; i < opts.Streams; i++ {
		f.addStream(paths[i%len(paths)], per)
	}
	return f, nil
}

// resolvePath walks src -> relays... -> dst, collecting the access-link
// resources each segment crosses and computing the Mathis TCP rate cap for
// the concatenated path.
func (n *Network) resolvePath(src, dst *Host, relays []string) (pathInfo, error) {
	hops := make([]*Host, 0, len(relays)+2)
	hops = append(hops, src)
	for _, r := range relays {
		h := n.hosts[r]
		if h == nil {
			return pathInfo{}, fmt.Errorf("%w: relay %q", ErrNoSuchHost, r)
		}
		if h.downFlag {
			return pathInfo{}, fmt.Errorf("%w: relay %q", ErrHostDown, r)
		}
		hops = append(hops, h)
	}
	hops = append(hops, dst)

	var resources []*sim.FluidResource
	var crossings, segs [][2]string
	for i := 0; i+1 < len(hops); i++ {
		a, b := hops[i], hops[i+1]
		if n.Partitioned(a.Site, b.Site) {
			return pathInfo{}, fmt.Errorf("%w: %s-%s", ErrPartitioned, a.Site, b.Site)
		}
		if a.Site != b.Site {
			crossings = append(crossings, pairKey(a.Site, b.Site))
		}
		segs = append(segs, [2]string{a.Site, b.Site})
		resources = append(resources, a.up, b.down)
	}
	// De-duplicate resources (a relay contributes its down then its up; no
	// duplicates arise today, but overlapping future topologies could).
	seen := make(map[*sim.FluidResource]bool, len(resources))
	uniq := resources[:0]
	for _, r := range resources {
		if !seen[r] {
			seen[r] = true
			uniq = append(uniq, r)
		}
	}
	for _, r := range uniq {
		if r.Capacity() <= 0 {
			return pathInfo{}, ErrZeroCapacity
		}
	}
	return pathInfo{resources: uniq, crossings: crossings, segs: segs}, nil
}

// pathLimit derives the TCP rate cap for a path from the network's
// current loss and latency — Mathis et al.: BW = MSS / (RTT * sqrt(2p/3)),
// 0 meaning uncapped on a lossless path. Streams are created with it and
// re-capped through it when loss or latency churns mid-transfer.
func (n *Network) pathLimit(segs [][2]string) float64 {
	var rtt time.Duration
	survive := 1.0
	for _, s := range segs {
		rtt += 2 * n.Latency(s[0], s[1])
		survive *= 1 - n.Loss(s[0], s[1])
	}
	loss := 1 - survive
	if loss <= 0 {
		return 0
	}
	return n.MTU / (rtt.Seconds() * math.Sqrt(2*loss/3))
}

// retune re-derives the Mathis limit of every live stream crossing the
// given site pair, pushing the new cap into the fluid system (which
// reallocates only the affected component). Called on loss and latency
// changes so in-flight transfers track current path conditions instead of
// keeping the cap computed at start.
func (f *Flow) retune(key [2]string) {
	for _, c := range f.order {
		if pi := f.pathOf[c]; pi.crosses(key) {
			c.SetLimit(f.net.pathLimit(pi.segs))
		}
	}
}

func (f *Flow) addStream(pi pathInfo, bytes float64) {
	f.netstream++
	f.active++
	c := &sim.FluidConsumer{
		Name:   fmt.Sprintf("%s->%s#%d", f.From, f.To, f.netstream),
		Weight: f.opts.Weight,
		Limit:  f.net.pathLimit(pi.segs),
	}
	c.OnDone = func() { f.streamDone(c) }
	f.net.flows.Add(c, bytes, pi.resources...)
	f.streams[c] = pi.resources
	f.pathOf[c] = pi
	f.order = append(f.order, c)
}

// drop removes a stream from the flow's books (not from the fluid
// system — the caller has already finished or removed it there) and
// credits the bytes the stream actually moved to the source host. Every
// stream terminal — natural completion, pooled re-split, partition cut,
// abort — lands here, so BytesSent sums to real progress, not the full
// flow size charged up-front regardless of outcome.
func (f *Flow) drop(c *sim.FluidConsumer) {
	f.net.hosts[f.From].BytesSent += c.Transferred()
	delete(f.streams, c)
	delete(f.pathOf, c)
	for i, s := range f.order {
		if s == c {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	f.active--
}

func (f *Flow) streamDone(c *sim.FluidConsumer) {
	donePath := f.pathOf[c]
	f.drop(c)
	if f.aborted {
		return
	}
	if f.opts.Pooled && f.active > 0 {
		// Steal half of the largest backlog onto the just-freed path.
		var victim *sim.FluidConsumer
		var max float64
		for _, s := range f.order {
			if r := s.Remaining(); r > max {
				max, victim = r, s
			}
		}
		// Only worth re-splitting if there is meaningful work to steal.
		if victim != nil && max > f.net.MTU {
			vicPath := f.pathOf[victim]
			f.net.flows.Remove(victim)
			f.drop(victim)
			f.addStream(vicPath, max/2)
			f.addStream(donePath, max/2)
			return
		}
	}
	if f.active == 0 && !f.done {
		f.done = true
		f.ended = f.net.eng.Now()
		delete(f.net.active, f)
		f.net.cFlowDone.Inc()
		f.span.End()
		if f.OnDone != nil {
			f.OnDone(f)
		}
	}
}

// partitionCut severs every stream whose path crosses the cut site pair.
// Static (non-pooled) striping has no reassembly protocol, so losing any
// stripe fails the whole transfer; a pooled flow restripes the severed
// backlog onto its first surviving path and fails only when fully cut.
func (f *Flow) partitionCut(key [2]string) {
	if f.done || f.aborted {
		return
	}
	var severed []*sim.FluidConsumer
	for _, c := range f.order {
		if f.pathOf[c].crosses(key) {
			severed = append(severed, c)
		}
	}
	if len(severed) == 0 {
		return
	}
	if len(severed) == f.active || !f.opts.Pooled {
		f.fail(fmt.Errorf("%w: %s-%s", ErrPartitioned, key[0], key[1]))
		return
	}
	stranded := 0.0
	for _, c := range severed {
		stranded += c.Remaining()
		f.net.flows.Remove(c)
		f.drop(c)
	}
	f.addStream(f.pathOf[f.order[0]], stranded)
}

// fail kills the flow because a host on its path died or its path was
// cut. Counted as failed, not aborted.
func (f *Flow) fail(err error) {
	if f.done || f.aborted {
		return
	}
	f.net.cFlowFail.Inc()
	f.span.Annotate(obs.Err(err))
	f.abort()
	if f.OnFail != nil {
		f.OnFail(f, err)
	}
}

// Abort cancels all in-progress streams at the user's request. OnDone
// and OnFail do not fire; the flow counts as aborted (so started flows
// always reconcile as done + failed + aborted + active).
func (f *Flow) Abort() {
	if f.done || f.aborted {
		return
	}
	f.net.cFlowAbort.Inc()
	f.abort()
}

// abort is the shared teardown behind Abort (user cancel) and fail
// (network kill): remove every stream from the fluid system, crediting
// the bytes each actually moved.
func (f *Flow) abort() {
	f.aborted = true
	f.span.End(obs.String("aborted", "true"))
	delete(f.net.active, f)
	for _, c := range f.order {
		f.net.flows.Remove(c)
		f.net.hosts[f.From].BytesSent += c.Transferred()
	}
	f.streams = map[*sim.FluidConsumer][]*sim.FluidResource{}
	f.pathOf = map[*sim.FluidConsumer]pathInfo{}
	f.order = nil
	f.active = 0
}

// Done reports whether the transfer completed.
func (f *Flow) Done() bool { return f.done }

// Duration returns the elapsed transfer time; valid once Done.
func (f *Flow) Duration() time.Duration { return f.ended - f.begun }

// ThroughputBps returns bytes/second achieved; valid once Done.
func (f *Flow) ThroughputBps() float64 {
	d := f.Duration().Seconds()
	if d <= 0 {
		return math.Inf(1)
	}
	return f.Bytes / d
}
