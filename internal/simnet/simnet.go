// Package simnet models the wide-area network that both the Globus and
// PlanetLab stacks ride on: hosts grouped into sites, propagation latency
// derived from site coordinates, per-host access-link bandwidth shared
// max-min fairly among flows, loss-limited TCP throughput (Mathis model),
// message loss, and site partitions.
//
// simnet exposes two planes:
//
//   - a control plane of small messages (Send / Call RPC) used by every
//     middleware protocol, with per-host counters so experiments can report
//     control messages per operation; and
//   - a data plane of bulk flows (StartFlow) used by the data-grid
//     experiments, built on the sim fluid-sharing model.
package simnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Common errors returned by the control plane.
var (
	ErrTimeout      = errors.New("simnet: call timed out")
	ErrNoSuchHost   = errors.New("simnet: no such host")
	ErrNoHandler    = errors.New("simnet: no handler for service")
	ErrPartitioned  = errors.New("simnet: sites partitioned")
	ErrHostDown     = errors.New("simnet: host down")
	ErrFlowAborted  = errors.New("simnet: flow aborted")
	ErrZeroCapacity = errors.New("simnet: zero-capacity path")
)

// IsTransient reports whether a control-plane error is worth retrying:
// timeouts, partitions, and down hosts all heal (or a circuit breaker
// gives up first), while refusals — no such host, no handler, and
// application errors — are answers, not outages.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrPartitioned) || errors.Is(err, ErrHostDown)
}

// Site is a named location with coordinates in "latency space": the
// propagation delay between two sites is the Euclidean distance between
// their coordinates, interpreted in milliseconds, plus 1ms.
type Site struct {
	Name string
	X, Y float64
}

// Handler serves a control-plane request and returns a response.
// Returning an error delivers the error string to the caller.
type Handler func(from string, req any) (any, error)

// Host is a network endpoint. Hosts belong to a site, have finite
// access-link capacity in each direction, and register named service
// handlers for the RPC plane.
type Host struct {
	Name string
	Site string

	net      *Network
	up, down *sim.FluidResource
	handlers map[string]Handler
	downFlag bool

	// MsgsSent and MsgsRecv count control-plane messages (requests and
	// responses separately), for the E3 scale experiment.
	MsgsSent, MsgsRecv uint64
	// BytesSent counts data-plane bytes originated by this host.
	BytesSent float64
}

// Network is the simulated WAN.
type Network struct {
	eng   *sim.Engine
	flows *sim.FluidSystem
	rng   *rand.Rand

	sites map[string]*Site
	hosts map[string]*Host

	latOverride map[[2]string]time.Duration
	lossRate    map[[2]string]float64
	partitioned map[[2]string]bool
	active      map[*Flow]struct{}
	flowSeq     uint64

	// calls tracks in-flight RPCs. The per-call state (settled flag,
	// pending timeout handle) must live on a struct reachable from the
	// Network — not in closure captures — so engine snapshots taken while
	// calls are in flight restore them exactly (see sim/snap.go).
	calls map[*call]struct{}

	// BaseLoss is the default packet-loss probability on any inter-site
	// path (intra-site paths are lossless).
	BaseLoss float64
	// MTU is the TCP segment size used by the Mathis throughput model.
	MTU float64

	// Trace, when non-nil, receives a line per control-plane delivery.
	Trace func(format string, args ...any)

	// tr, when non-nil, records causal spans and counters for every
	// control-plane message and data flow. All counter handles below are
	// nil (and inert) when tracing is off, so the hot paths pay only a
	// nil check.
	tr                                   *obs.Tracer
	cSent, cRecv                         *obs.Counter
	cDropLoss, cDropPartition, cDropDown *obs.Counter
	cCallTimeout, cCallRefused           *obs.Counter
	cFlowStart, cFlowDone                *obs.Counter
	cFlowFail, cFlowAbort                *obs.Counter
	hCallRTT                             *obs.Hist
}

// New returns an empty network bound to the engine.
func New(eng *sim.Engine) *Network {
	return &Network{
		eng:         eng,
		flows:       sim.NewFluidSystem(eng),
		rng:         eng.ForkRand(),
		sites:       make(map[string]*Site),
		hosts:       make(map[string]*Host),
		latOverride: make(map[[2]string]time.Duration),
		lossRate:    make(map[[2]string]float64),
		partitioned: make(map[[2]string]bool),
		active:      make(map[*Flow]struct{}),
		calls:       make(map[*call]struct{}),
		MTU:         1460,
	}
}

// Engine returns the simulation engine the network is bound to.
func (n *Network) Engine() *sim.Engine { return n.eng }

// SetTracer installs (or, with nil, removes) the observability layer:
// control-plane sends and calls become causally linked spans, and the
// message/flow/drop counters register on the tracer's registry.
func (n *Network) SetTracer(tr *obs.Tracer) {
	n.tr = tr
	n.cSent = tr.Counter("net.msgs_sent")
	n.cRecv = tr.Counter("net.msgs_recv")
	n.cDropLoss = tr.Counter("net.drop.loss")
	n.cDropPartition = tr.Counter("net.drop.partition")
	n.cDropDown = tr.Counter("net.drop.host_down")
	n.cCallTimeout = tr.Counter("net.call.timeout")
	n.cCallRefused = tr.Counter("net.call.refused")
	n.cFlowStart = tr.Counter("net.flows.started")
	n.cFlowDone = tr.Counter("net.flows.done")
	n.cFlowFail = tr.Counter("net.flows.failed")
	n.cFlowAbort = tr.Counter("net.flows.aborted")
	n.hCallRTT = tr.Hist("net.call.rtt")
}

// Tracer returns the installed tracer (nil when tracing is off).
func (n *Network) Tracer() *obs.Tracer { return n.tr }

// dropCounter maps a deliverability error to its drop counter.
func (n *Network) dropCounter(err error) *obs.Counter {
	switch {
	case errors.Is(err, ErrPartitioned):
		return n.cDropPartition
	case errors.Is(err, ErrHostDown):
		return n.cDropDown
	default:
		return nil
	}
}

// AddSite registers a site at the given latency-space coordinates.
func (n *Network) AddSite(name string, x, y float64) *Site {
	if _, dup := n.sites[name]; dup {
		panic(fmt.Sprintf("simnet: duplicate site %q", name))
	}
	s := &Site{Name: name, X: x, Y: y}
	n.sites[name] = s
	return s
}

// AddHost registers a host at a site with symmetric access-link capacity
// in bytes/second.
func (n *Network) AddHost(name, site string, linkBps float64) *Host {
	if _, dup := n.hosts[name]; dup {
		panic(fmt.Sprintf("simnet: duplicate host %q", name))
	}
	if _, ok := n.sites[site]; !ok {
		panic(fmt.Sprintf("simnet: host %q references unknown site %q", name, site))
	}
	h := &Host{
		Name:     name,
		Site:     site,
		net:      n,
		up:       n.flows.NewResource(name+"/up", linkBps),
		down:     n.flows.NewResource(name+"/down", linkBps),
		handlers: make(map[string]Handler),
	}
	n.hosts[name] = h
	return h
}

// Host returns a host by name, or nil.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// Hosts returns the number of registered hosts.
func (n *Network) Hosts() int { return len(n.hosts) }

// ActiveFlows returns the number of flows currently in progress — the
// balancing term in the started = done + failed + aborted + active
// conservation identity the counters maintain.
func (n *Network) ActiveFlows() int { return len(n.active) }

// SetDown marks a host as failed (true) or recovered (false). Messages to
// and from a down host are dropped, and in-flight flows whose path
// touches the host are killed (their OnFail fires).
func (n *Network) SetDown(host string, down bool) {
	h := n.hosts[host]
	if h == nil {
		panic(fmt.Sprintf("simnet: SetDown on unknown host %q", host))
	}
	h.downFlag = down
	if !down {
		return
	}
	victims := n.victims(func(f *Flow) bool { return f.hosts[host] })
	for _, f := range victims {
		f.fail(fmt.Errorf("%w: %s", ErrHostDown, host))
	}
}

// victims collects active flows matching pred in creation order, so kill
// callbacks fire in a deterministic sequence regardless of map iteration.
func (n *Network) victims(pred func(*Flow) bool) []*Flow {
	var out []*Flow
	for f := range n.active {
		if pred(f) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// SetLatency overrides the site-to-site propagation latency. In-flight
// streams crossing the pair have their Mathis rate cap re-derived from
// the new RTT.
func (n *Network) SetLatency(siteA, siteB string, d time.Duration) {
	key := pairKey(siteA, siteB)
	n.latOverride[key] = d
	n.retune(key)
}

// SetLoss sets the packet-loss probability between two sites, overriding
// BaseLoss for that pair. In-flight streams crossing the pair are
// re-capped at the Mathis limit for the new loss rate — a mid-transfer
// loss burst slows live flows, not just future ones.
func (n *Network) SetLoss(siteA, siteB string, p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("simnet: loss %v out of range [0,1)", p))
	}
	key := pairKey(siteA, siteB)
	n.lossRate[key] = p
	n.retune(key)
}

// ClearLoss removes a SetLoss override, restoring BaseLoss for the pair —
// the revocation half of a loss-burst fault. Live streams recover their
// pre-burst rate cap.
func (n *Network) ClearLoss(siteA, siteB string) {
	key := pairKey(siteA, siteB)
	delete(n.lossRate, key)
	n.retune(key)
}

// ClearLatency removes a SetLatency override, restoring the
// coordinate-derived propagation delay and re-capping live streams.
func (n *Network) ClearLatency(siteA, siteB string) {
	key := pairKey(siteA, siteB)
	delete(n.latOverride, key)
	n.retune(key)
}

// retune pushes the current Mathis limit into every live stream whose
// path crosses the given site pair, in flow-creation order for
// determinism.
func (n *Network) retune(key [2]string) {
	victims := n.victims(func(f *Flow) bool {
		for _, c := range f.order {
			if f.pathOf[c].crosses(key) {
				return true
			}
		}
		return false
	})
	for _, f := range victims {
		f.retune(key)
	}
}

// Partition cuts (or heals, with false) connectivity between two sites.
// Cutting also severs the in-flight data streams crossing the pair:
// non-pooled striped flows fail outright (OnFail fires — they must not
// hang), pooled flows restripe the severed backlog onto a surviving path
// and fail only when no path survives.
func (n *Network) Partition(siteA, siteB string, cut bool) {
	key := pairKey(siteA, siteB)
	n.partitioned[key] = cut
	if !cut {
		return
	}
	victims := n.victims(func(f *Flow) bool {
		for _, c := range f.order {
			if f.pathOf[c].crosses(key) {
				return true
			}
		}
		return false
	})
	for _, f := range victims {
		f.partitionCut(key)
	}
}

// Latency returns the one-way propagation delay between two sites.
func (n *Network) Latency(siteA, siteB string) time.Duration {
	if siteA == siteB {
		return 500 * time.Microsecond
	}
	if d, ok := n.latOverride[pairKey(siteA, siteB)]; ok {
		return d
	}
	a, b := n.sites[siteA], n.sites[siteB]
	if a == nil || b == nil {
		panic(fmt.Sprintf("simnet: latency between unknown sites %q,%q", siteA, siteB))
	}
	dx, dy := a.X-b.X, a.Y-b.Y
	ms := math.Sqrt(dx*dx+dy*dy) + 1
	return time.Duration(ms * float64(time.Millisecond))
}

// Loss returns the packet-loss probability between two sites.
func (n *Network) Loss(siteA, siteB string) float64 {
	if siteA == siteB {
		return 0
	}
	if p, ok := n.lossRate[pairKey(siteA, siteB)]; ok {
		return p
	}
	return n.BaseLoss
}

// Partitioned reports whether the two sites are currently cut off.
func (n *Network) Partitioned(siteA, siteB string) bool {
	if siteA == siteB {
		return false
	}
	return n.partitioned[pairKey(siteA, siteB)]
}

// RTT returns the round-trip time between two hosts.
func (n *Network) RTT(hostA, hostB string) time.Duration {
	a, b := n.hosts[hostA], n.hosts[hostB]
	if a == nil || b == nil {
		panic(fmt.Sprintf("simnet: RTT between unknown hosts %q,%q", hostA, hostB))
	}
	return 2 * n.Latency(a.Site, b.Site)
}

// Handle registers (or replaces) the handler for a named service on the
// host.
func (h *Host) Handle(service string, fn Handler) {
	if fn == nil {
		panic("simnet: nil handler")
	}
	h.handlers[service] = fn
}

// Down reports whether the host is marked failed.
func (h *Host) Down() bool { return h.downFlag }

// LinkBps returns the host's access-link capacity in bytes/second.
func (h *Host) LinkBps() float64 { return h.up.Capacity() }

// deliverable reports whether a message can travel from a to b now, and
// the latency it would experience.
func (n *Network) deliverable(a, b *Host) (time.Duration, error) {
	if a == nil || b == nil {
		return 0, ErrNoSuchHost
	}
	if a.downFlag || b.downFlag {
		return 0, ErrHostDown
	}
	if n.Partitioned(a.Site, b.Site) {
		return 0, ErrPartitioned
	}
	return n.Latency(a.Site, b.Site), nil
}

// Send delivers a one-way message to a service on the destination host.
// Delivery is best-effort: loss, partitions and down hosts silently drop
// it (like a UDP datagram). The handler's response, if any, is discarded.
func (n *Network) Send(from, to, service string, msg any) {
	a, b := n.hosts[from], n.hosts[to]
	lat, err := n.deliverable(a, b)
	if err != nil {
		n.dropCounter(err).Inc()
		return
	}
	var span obs.SpanContext
	if n.tr != nil {
		span = n.tr.Begin("net.send",
			obs.String("from", from), obs.String("to", to), obs.String("svc", service))
	}
	a.MsgsSent++
	n.cSent.Inc()
	if n.rng.Float64() < n.Loss(a.Site, b.Site) {
		n.cDropLoss.Inc()
		span.End(obs.String("drop", "loss"))
		return // dropped in flight
	}
	n.eng.Schedule(lat, func() {
		// Down-host and partition state are both rechecked at delivery
		// time: a cut that lands while the message is in flight severs it,
		// exactly as it severs in-flight data flows.
		if b.downFlag || n.Partitioned(a.Site, b.Site) {
			if b.downFlag {
				n.cDropDown.Inc()
				span.End(obs.String("drop", "host_down"))
			} else {
				n.cDropPartition.Inc()
				span.End(obs.String("drop", "partition"))
			}
			return
		}
		b.MsgsRecv++
		n.cRecv.Inc()
		if n.Trace != nil {
			n.Trace("%v  %s -> %s  %s", n.eng.Now(), from, to, service)
		}
		if fn, ok := b.handlers[service]; ok {
			// The handler runs under the delivery span, so spans it opens
			// (and messages it sends) are causal children of this message.
			if n.tr != nil {
				n.tr.Scope(span, func() { fn(from, msg) })
			} else {
				fn(from, msg) // response discarded for one-way sends
			}
		}
		span.End()
	})
}

// Call performs a request/response RPC and invokes done exactly once with
// the result. Lost requests or responses surface as ErrTimeout after the
// deadline. Calls are asynchronous because the kernel is event-driven;
// CallSync in package rpcutil-style wrappers is intentionally absent.
func (n *Network) Call(from, to, service string, req any, timeout time.Duration, done func(resp any, err error)) {
	if done == nil {
		panic("simnet: nil completion for Call")
	}
	a, b := n.hosts[from], n.hosts[to]
	lat, err := n.deliverable(a, b)
	if err != nil {
		n.dropCounter(err).Inc()
		n.eng.Schedule(0, func() { done(nil, err) })
		return
	}
	c := &call{n: n, a: a, start: n.eng.Now(), done: done}
	if n.tr != nil {
		c.span = n.tr.Begin("net.call",
			obs.String("from", from), obs.String("to", to), obs.String("svc", service))
	}
	n.calls[c] = struct{}{}
	if timeout > 0 {
		c.timeoutEv = n.eng.Schedule(timeout, func() { c.finish(nil, ErrTimeout) })
	}
	a.MsgsSent++
	n.cSent.Inc()
	if n.rng.Float64() < n.Loss(a.Site, b.Site) {
		n.cDropLoss.Inc()
		if timeout <= 0 {
			c.drop() // nothing can ever settle it
		}
		return // request lost; timeout will fire
	}
	n.eng.Schedule(lat, func() {
		if b.downFlag {
			n.cDropDown.Inc()
			return
		}
		b.MsgsRecv++
		n.cRecv.Inc()
		if n.Trace != nil {
			n.Trace("%v  %s -> %s  %s (call)", n.eng.Now(), from, to, service)
		}
		fn, ok := b.handlers[service]
		if !ok {
			// "Connection refused" is observable, unlike loss, so no loss
			// draw — but the reply is still a control message travelling
			// back, so it is counted and a crashed caller never sees it.
			b.MsgsSent++
			n.cSent.Inc()
			n.eng.Schedule(lat, func() {
				if a.downFlag {
					n.cDropDown.Inc()
					return
				}
				a.MsgsRecv++
				n.cRecv.Inc()
				c.finish(nil, ErrNoHandler)
			})
			return
		}
		// The handler runs under the call span: spans it opens become
		// request→handler→response children of this RPC.
		var resp any
		var herr error
		if n.tr != nil {
			n.tr.Scope(c.span, func() { resp, herr = fn(from, req) })
		} else {
			resp, herr = fn(from, req)
		}
		b.MsgsSent++
		n.cSent.Inc()
		if n.rng.Float64() < n.Loss(a.Site, b.Site) {
			n.cDropLoss.Inc()
			if timeout <= 0 {
				c.drop() // response lost with no timeout: never settles
			}
			return // response lost
		}
		n.eng.Schedule(lat, func() {
			if a.downFlag {
				n.cDropDown.Inc()
				return
			}
			a.MsgsRecv++
			n.cRecv.Inc()
			c.finish(resp, herr)
		})
	})
}

// call is one in-flight RPC. Keeping its mutable state in fields (rather
// than closure-captured locals) makes in-flight calls part of the
// snapshot-restorable object graph.
type call struct {
	n         *Network
	a         *Host // caller, for delivery checks
	span      obs.SpanContext
	start     time.Duration
	done      func(resp any, err error)
	finished  bool
	timeoutEv sim.Event
}

// finish settles the call exactly once.
func (c *call) finish(resp any, err error) {
	if c.finished {
		return
	}
	c.finished = true
	delete(c.n.calls, c)
	// Cancel the pending timeout so completed calls do not leave dead
	// events in the heap (Cancel on the fired timeout is a no-op).
	c.n.eng.Cancel(c.timeoutEv)
	if c.n.tr != nil {
		switch {
		case errors.Is(err, ErrTimeout):
			c.n.cCallTimeout.Inc()
		case errors.Is(err, ErrNoHandler):
			c.n.cCallRefused.Inc()
		}
		c.n.hCallRTT.Observe(c.n.eng.Now() - c.start)
		c.span.End(obs.Err(err))
	}
	c.done(resp, err)
}

// drop abandons a call that can never settle (lost with no timeout armed)
// so it does not accumulate in the in-flight set.
func (c *call) drop() {
	c.finished = true
	delete(c.n.calls, c)
}
