package simnet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

// testNet builds a 3-site network: A at (0,0), B at (30,0), C at (0,40),
// one host per site with 1e6 B/s access links plus a second host at A.
func testNet(t *testing.T, seed int64) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine(seed)
	n := New(eng)
	n.AddSite("A", 0, 0)
	n.AddSite("B", 30, 0)
	n.AddSite("C", 0, 40)
	n.AddHost("a1", "A", 1e6)
	n.AddHost("a2", "A", 1e6)
	n.AddHost("b1", "B", 1e6)
	n.AddHost("c1", "C", 1e6)
	return eng, n
}

func TestLatencyGeometry(t *testing.T) {
	_, n := testNet(t, 1)
	if got, want := n.Latency("A", "B"), 31*time.Millisecond; got != want {
		t.Errorf("Latency(A,B) = %v, want %v", got, want)
	}
	if got, want := n.Latency("B", "C"), 51*time.Millisecond; got != want {
		t.Errorf("Latency(B,C) = %v, want %v (3-4-5 triangle)", got, want)
	}
	if got, want := n.Latency("A", "A"), 500*time.Microsecond; got != want {
		t.Errorf("intra-site latency = %v, want %v", got, want)
	}
	n.SetLatency("A", "B", 7*time.Millisecond)
	if got := n.Latency("B", "A"); got != 7*time.Millisecond {
		t.Errorf("override not symmetric: %v", got)
	}
}

func TestSendDelivers(t *testing.T) {
	eng, n := testNet(t, 1)
	var gotFrom string
	var gotMsg any
	var at time.Duration
	n.Host("b1").Handle("echo", func(from string, req any) (any, error) {
		gotFrom, gotMsg, at = from, req, eng.Now()
		return nil, nil
	})
	n.Send("a1", "b1", "echo", "hello")
	eng.Run()
	if gotFrom != "a1" || gotMsg != "hello" {
		t.Fatalf("delivery = (%q, %v)", gotFrom, gotMsg)
	}
	if at != 31*time.Millisecond {
		t.Errorf("delivered at %v, want 31ms", at)
	}
	if n.Host("a1").MsgsSent != 1 || n.Host("b1").MsgsRecv != 1 {
		t.Errorf("counters sent=%d recv=%d", n.Host("a1").MsgsSent, n.Host("b1").MsgsRecv)
	}
}

func TestCallRoundTrip(t *testing.T) {
	eng, n := testNet(t, 1)
	n.Host("b1").Handle("double", func(from string, req any) (any, error) {
		return req.(int) * 2, nil
	})
	var resp any
	var err error
	var at time.Duration
	n.Call("a1", "b1", "double", 21, time.Second, func(r any, e error) {
		resp, err, at = r, e, eng.Now()
	})
	eng.Run()
	if err != nil || resp != 42 {
		t.Fatalf("Call = (%v, %v)", resp, err)
	}
	if at != 62*time.Millisecond {
		t.Errorf("RTT completion at %v, want 62ms", at)
	}
}

func TestCallHandlerError(t *testing.T) {
	eng, n := testNet(t, 1)
	boom := errors.New("boom")
	n.Host("b1").Handle("svc", func(string, any) (any, error) { return nil, boom })
	var err error
	n.Call("a1", "b1", "svc", nil, time.Second, func(_ any, e error) { err = e })
	eng.Run()
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestCallNoHandler(t *testing.T) {
	eng, n := testNet(t, 1)
	var err error
	n.Call("a1", "b1", "nosuch", nil, time.Second, func(_ any, e error) { err = e })
	eng.Run()
	if !errors.Is(err, ErrNoHandler) {
		t.Errorf("err = %v, want ErrNoHandler", err)
	}
}

func TestCallTimeoutOnLoss(t *testing.T) {
	eng, n := testNet(t, 1)
	n.SetLoss("A", "B", 0.999999) // effectively always lost
	n.Host("b1").Handle("svc", func(string, any) (any, error) { return "ok", nil })
	var err error
	n.Call("a1", "b1", "svc", nil, 500*time.Millisecond, func(_ any, e error) { err = e })
	eng.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestPartitionBlocksTraffic(t *testing.T) {
	eng, n := testNet(t, 1)
	n.Partition("A", "B", true)
	var err error
	n.Call("a1", "b1", "svc", nil, time.Second, func(_ any, e error) { err = e })
	eng.Run()
	if !errors.Is(err, ErrPartitioned) {
		t.Errorf("err = %v, want ErrPartitioned", err)
	}
	// Heal and verify.
	n.Partition("A", "B", false)
	n.Host("b1").Handle("svc", func(string, any) (any, error) { return "ok", nil })
	var resp any
	n.Call("a1", "b1", "svc", nil, time.Second, func(r any, e error) { resp, err = r, e })
	eng.Run()
	if err != nil || resp != "ok" {
		t.Errorf("after heal: (%v, %v)", resp, err)
	}
}

func TestDownHost(t *testing.T) {
	eng, n := testNet(t, 1)
	n.SetDown("b1", true)
	var err error
	n.Call("a1", "b1", "svc", nil, time.Second, func(_ any, e error) { err = e })
	eng.Run()
	if !errors.Is(err, ErrHostDown) {
		t.Errorf("err = %v, want ErrHostDown", err)
	}
}

func TestIntraSiteFastPath(t *testing.T) {
	eng, n := testNet(t, 1)
	n.Host("a2").Handle("svc", func(string, any) (any, error) { return "ok", nil })
	var at time.Duration
	n.Call("a1", "a2", "svc", nil, time.Second, func(any, error) { at = eng.Now() })
	eng.Run()
	if at != time.Millisecond { // 2 * 500us
		t.Errorf("intra-site RTT %v, want 1ms", at)
	}
}

func TestFlowSingleStream(t *testing.T) {
	eng, n := testNet(t, 1)
	var got *Flow
	_, err := n.StartFlow("a1", "b1", 1e6, FlowOpts{}, func(f *Flow) { got = f })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got == nil {
		t.Fatal("flow never completed")
	}
	// 1e6 bytes at 1e6 B/s bottleneck ≈ 1s.
	if d := got.Duration(); d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Errorf("duration %v, want ~1s", d)
	}
	if bps := got.ThroughputBps(); bps < 0.9e6 || bps > 1.1e6 {
		t.Errorf("throughput %v, want ~1e6", bps)
	}
}

func TestFlowsShareAccessLink(t *testing.T) {
	eng, n := testNet(t, 1)
	var d1, d2 time.Duration
	n.StartFlow("a1", "b1", 1e6, FlowOpts{}, func(f *Flow) { d1 = f.Duration() })
	n.StartFlow("a1", "c1", 1e6, FlowOpts{}, func(f *Flow) { d2 = f.Duration() })
	eng.Run()
	// Both cross a1's 1e6 uplink → each gets 5e5 B/s → ~2s.
	for i, d := range []time.Duration{d1, d2} {
		if d < 1900*time.Millisecond || d > 2100*time.Millisecond {
			t.Errorf("flow %d duration %v, want ~2s", i, d)
		}
	}
}

func TestFlowLossLimited(t *testing.T) {
	eng, n := testNet(t, 1)
	n.SetLoss("A", "B", 0.01)
	var f1 *Flow
	n.StartFlow("a1", "b1", 1e6, FlowOpts{}, func(f *Flow) { f1 = f })
	eng.Run()
	if f1 == nil {
		t.Fatal("flow never completed")
	}
	// Mathis: 1460/(0.062*sqrt(2*0.01/3)) ≈ 288 KB/s < 1e6 link rate.
	bps := f1.ThroughputBps()
	if bps > 3.5e5 || bps < 2e5 {
		t.Errorf("loss-limited throughput %v, want ~2.9e5", bps)
	}
}

func TestStripingBeatsSingleStreamOnLossyPath(t *testing.T) {
	// The E8 claim: each stream is independently loss-limited, so k
	// streams ≈ k× throughput until the link saturates.
	eng, n := testNet(t, 1)
	n.SetLoss("A", "B", 0.01)
	var single, striped *Flow
	n.StartFlow("a1", "b1", 1e6, FlowOpts{Streams: 1}, func(f *Flow) { single = f })
	eng.Run()

	eng2 := sim.NewEngine(1)
	n2 := New(eng2)
	n2.AddSite("A", 0, 0)
	n2.AddSite("B", 30, 0)
	n2.AddHost("a1", "A", 1e6)
	n2.AddHost("b1", "B", 1e6)
	n2.SetLoss("A", "B", 0.01)
	n2.StartFlow("a1", "b1", 1e6, FlowOpts{Streams: 3}, func(f *Flow) { striped = f })
	eng2.Run()

	if single == nil || striped == nil {
		t.Fatal("flows incomplete")
	}
	ratio := striped.ThroughputBps() / single.ThroughputBps()
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("striping speedup %.2f, want ~3", ratio)
	}
}

func TestFlowRelayPath(t *testing.T) {
	eng, n := testNet(t, 1)
	var f1 *Flow
	_, err := n.StartFlow("a1", "b1", 1e6, FlowOpts{Paths: [][]string{{"c1"}}}, func(f *Flow) { f1 = f })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if f1 == nil {
		t.Fatal("relayed flow never completed")
	}
	// Relay path still bottlenecked at 1e6 B/s.
	if d := f1.Duration(); d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Errorf("duration %v, want ~1s", d)
	}
}

func TestMultipathAggregatesCapacity(t *testing.T) {
	// Two paths that share no bottleneck with dst capacity 2e6: direct
	// (src.up is shared) — build custom topology: src has 2e6 uplink, dst
	// 2e6 downlink, relay has 1e6. Direct-only would get 2e6; but force
	// loss on direct so it is capped, and multipath recovers via relay.
	eng := sim.NewEngine(1)
	n := New(eng)
	n.AddSite("A", 0, 0)
	n.AddSite("B", 30, 0)
	n.AddSite("R", 15, 10)
	n.AddHost("src", "A", 2e6)
	n.AddHost("dst", "B", 2e6)
	n.AddHost("relay", "R", 1e6)
	n.SetLoss("A", "B", 0.02) // direct path lossy
	// A-R and R-B clean.

	var direct, multi *Flow
	n.StartFlow("src", "dst", 2e6, FlowOpts{Streams: 2}, func(f *Flow) { direct = f })
	eng.Run()

	eng2 := sim.NewEngine(1)
	n2 := New(eng2)
	n2.AddSite("A", 0, 0)
	n2.AddSite("B", 30, 0)
	n2.AddSite("R", 15, 10)
	n2.AddHost("src", "A", 2e6)
	n2.AddHost("dst", "B", 2e6)
	n2.AddHost("relay", "R", 1e6)
	n2.SetLoss("A", "B", 0.02)
	n2.StartFlow("src", "dst", 2e6, FlowOpts{Streams: 2, Paths: [][]string{nil, {"relay"}}, Pooled: true}, func(f *Flow) { multi = f })
	eng2.Run()

	if direct == nil || multi == nil {
		t.Fatal("flows incomplete")
	}
	if multi.ThroughputBps() <= direct.ThroughputBps() {
		t.Errorf("multipath %.0f <= direct %.0f B/s; overlay should win on lossy direct path",
			multi.ThroughputBps(), direct.ThroughputBps())
	}
}

func TestFlowAbort(t *testing.T) {
	eng, n := testNet(t, 1)
	completed := false
	f, err := n.StartFlow("a1", "b1", 1e9, FlowOpts{}, func(*Flow) { completed = true })
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(time.Second, f.Abort)
	eng.Run()
	if completed {
		t.Error("aborted flow reported completion")
	}
	if f.Done() {
		t.Error("aborted flow Done() = true")
	}
}

func TestFlowErrors(t *testing.T) {
	_, n := testNet(t, 1)
	if _, err := n.StartFlow("a1", "nosuch", 1, FlowOpts{}, nil); !errors.Is(err, ErrNoSuchHost) {
		t.Errorf("unknown dst: %v", err)
	}
	if _, err := n.StartFlow("a1", "b1", 0, FlowOpts{}, nil); err == nil {
		t.Error("zero bytes accepted")
	}
	n.Partition("A", "B", true)
	if _, err := n.StartFlow("a1", "b1", 1, FlowOpts{}, nil); !errors.Is(err, ErrPartitioned) {
		t.Errorf("partitioned: %v", err)
	}
	n.Partition("A", "B", false)
	n.SetDown("c1", true)
	if _, err := n.StartFlow("a1", "b1", 1, FlowOpts{Paths: [][]string{{"c1"}}}, nil); !errors.Is(err, ErrHostDown) {
		t.Errorf("down relay: %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	_, n := testNet(t, 1)
	for name, fn := range map[string]func(){
		"dup site":     func() { n.AddSite("A", 0, 0) },
		"dup host":     func() { n.AddHost("a1", "A", 1) },
		"unknown site": func() { n.AddHost("x", "nosuch", 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHostFailureKillsFlows(t *testing.T) {
	eng, n := testNet(t, 1)
	var failed error
	var doneFired bool
	f, err := n.StartFlow("a1", "b1", 1e9, FlowOpts{}, func(*Flow) { doneFired = true })
	if err != nil {
		t.Fatal(err)
	}
	f.OnFail = func(_ *Flow, e error) { failed = e }
	eng.Schedule(time.Second, func() { n.SetDown("b1", true) })
	eng.Run()
	if doneFired {
		t.Error("OnDone fired for killed flow")
	}
	if !errors.Is(failed, ErrHostDown) {
		t.Errorf("OnFail = %v, want ErrHostDown", failed)
	}
	if !f.Done() == false {
		t.Errorf("flow Done after kill")
	}
}

func TestRelayFailureKillsMultipathFlow(t *testing.T) {
	eng, n := testNet(t, 1)
	var failed error
	f, err := n.StartFlow("a1", "b1", 1e9, FlowOpts{
		Streams: 2, Paths: [][]string{nil, {"c1"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.OnFail = func(_ *Flow, e error) { failed = e }
	eng.Schedule(time.Second, func() { n.SetDown("c1", true) })
	eng.Run()
	if !errors.Is(failed, ErrHostDown) {
		t.Errorf("relay failure: %v", failed)
	}
}

func TestUnrelatedHostFailureLeavesFlowAlone(t *testing.T) {
	eng, n := testNet(t, 1)
	var completed *Flow
	_, err := n.StartFlow("a1", "b1", 1e6, FlowOpts{}, func(f *Flow) { completed = f })
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(100*time.Millisecond, func() { n.SetDown("c1", true) })
	eng.Run()
	if completed == nil {
		t.Error("flow killed by unrelated host failure")
	}
}

func TestFlowRecoveredHostAllowsNewFlows(t *testing.T) {
	eng, n := testNet(t, 1)
	n.SetDown("b1", true)
	if _, err := n.StartFlow("a1", "b1", 1, FlowOpts{}, nil); !errors.Is(err, ErrHostDown) {
		t.Fatalf("down host accepted flow: %v", err)
	}
	n.SetDown("b1", false)
	var done bool
	if _, err := n.StartFlow("a1", "b1", 1e3, FlowOpts{}, func(*Flow) { done = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Error("flow after recovery incomplete")
	}
}
