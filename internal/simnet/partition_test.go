package simnet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func partitionNet(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine(1)
	net := New(eng)
	net.AddSite("A", 0, 0)
	net.AddSite("B", 40, 0)
	net.AddSite("R", 20, 15)
	net.AddHost("a", "A", 1e6)
	net.AddHost("b", "B", 1e6)
	net.AddHost("r", "R", 1e6)
	return eng, net
}

// A partition during a striped (non-pooled) transfer must fail the whole
// flow promptly — static striping has no reassembly protocol, so a lost
// stripe is a lost transfer, never a hang.
func TestPartitionFailsStripedFlow(t *testing.T) {
	eng, net := partitionNet(t)
	var failErr error
	doneCalled := false
	f, err := net.StartFlow("a", "b", 10e6, FlowOpts{Streams: 4}, func(*Flow) { doneCalled = true })
	if err != nil {
		t.Fatal(err)
	}
	f.OnFail = func(_ *Flow, e error) { failErr = e }
	eng.RunUntil(2 * time.Second)
	net.Partition("A", "B", true)
	eng.Run()
	if failErr == nil {
		t.Fatal("flow survived a full partition")
	}
	if !errors.Is(failErr, ErrPartitioned) {
		t.Errorf("fail error = %v", failErr)
	}
	if doneCalled || f.Done() {
		t.Error("partitioned flow reported done")
	}
}

// A pooled multipath flow only loses the streams whose path crosses the
// cut; the stranded bytes restripe onto a surviving path and the transfer
// completes.
func TestPartitionPartialCutPooledFlowCompletes(t *testing.T) {
	eng, net := partitionNet(t)
	done := false
	f, err := net.StartFlow("a", "b", 4e6, FlowOpts{
		Streams: 2,
		Paths:   [][]string{nil, {"r"}},
		Pooled:  true,
	}, func(*Flow) { done = true })
	if err != nil {
		t.Fatal(err)
	}
	f.OnFail = func(_ *Flow, e error) { t.Errorf("pooled flow failed: %v", e) }
	eng.RunUntil(time.Second)
	net.Partition("A", "B", true) // severs only the direct-path stream
	eng.Run()
	if !done {
		t.Fatal("pooled flow did not complete over the surviving relay path")
	}
}

// Cutting every path of a pooled flow still fails it.
func TestPartitionFullCutPooledFlowFails(t *testing.T) {
	eng, net := partitionNet(t)
	var failErr error
	f, err := net.StartFlow("a", "b", 10e6, FlowOpts{
		Streams: 2,
		Paths:   [][]string{nil, {"r"}},
		Pooled:  true,
	}, func(*Flow) {})
	if err != nil {
		t.Fatal(err)
	}
	f.OnFail = func(_ *Flow, e error) { failErr = e }
	eng.RunUntil(time.Second)
	net.Partition("A", "B", true)
	net.Partition("R", "B", true) // now the relay path is cut too
	eng.Run()
	if !errors.Is(failErr, ErrPartitioned) {
		t.Fatalf("fully cut pooled flow: err = %v", failErr)
	}
}

// An irrelevant partition must not touch a flow.
func TestPartitionElsewhereLeavesFlowAlone(t *testing.T) {
	eng, net := partitionNet(t)
	done := false
	f, err := net.StartFlow("a", "b", 2e6, FlowOpts{Streams: 2}, func(*Flow) { done = true })
	if err != nil {
		t.Fatal(err)
	}
	f.OnFail = func(_ *Flow, e error) { t.Errorf("unrelated partition killed flow: %v", e) }
	eng.RunUntil(time.Second)
	net.Partition("A", "R", true)
	eng.Run()
	if !done {
		t.Error("flow did not complete")
	}
}

// New flows across a cut are rejected synchronously; healing the cut
// admits them again.
func TestPartitionHealAdmitsNewFlows(t *testing.T) {
	eng, net := partitionNet(t)
	net.Partition("A", "B", true)
	if _, err := net.StartFlow("a", "b", 1e6, FlowOpts{}, nil); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("flow across cut: err = %v", err)
	}
	net.Partition("A", "B", false)
	done := false
	if _, err := net.StartFlow("a", "b", 1e6, FlowOpts{}, func(*Flow) { done = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Error("flow after heal did not complete")
	}
}

// ClearLoss / ClearLatency restore the defaults exactly (fault revocation
// must leave no residue).
func TestClearLossAndLatency(t *testing.T) {
	_, net := partitionNet(t)
	base := net.Latency("A", "B")
	net.SetLoss("A", "B", 0.3)
	net.SetLatency("A", "B", 900*time.Millisecond)
	if net.Loss("A", "B") != 0.3 || net.Latency("A", "B") != 900*time.Millisecond {
		t.Fatal("overrides not applied")
	}
	net.ClearLoss("A", "B")
	net.ClearLatency("A", "B")
	if net.Loss("A", "B") != 0 {
		t.Errorf("loss residue %v", net.Loss("A", "B"))
	}
	if net.Latency("A", "B") != base {
		t.Errorf("latency %v != base %v", net.Latency("A", "B"), base)
	}
}
