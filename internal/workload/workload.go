// Package workload generates the two application populations §3.2
// contrasts: "Grid applications are often compute-intensive" with heavy
// CPU demand and modest network use, while "PlanetLab services are
// generally network-intensive and rarely have significant CPU demands" —
// long-lived, widely distributed, bandwidth-hungry. Generators are seeded
// and deterministic; arrival processes are Poisson, service times
// lognormal, and popularity Zipfian (driving the E6 port-contention
// experiment).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Exp draws an exponential variate with the given mean.
func Exp(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// LogNormal draws a lognormal variate with the given median and sigma
// (shape); median = exp(mu).
func LogNormal(rng *rand.Rand, median time.Duration, sigma float64) time.Duration {
	mu := math.Log(float64(median))
	return time.Duration(math.Exp(mu + sigma*rng.NormFloat64()))
}

// Zipf draws ranks in [0, n) with exponent s (heavier head for larger s).
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf sampler over n items.
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if s <= 1 {
		s = 1.01 // rand.Zipf requires s > 1
	}
	return &Zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Draw returns a rank in [0, n).
func (z *Zipf) Draw() int { return int(z.z.Uint64()) }

// GridJob is one compute-intensive job.
type GridJob struct {
	ID string
	// Arrival is the submission offset from the workload start.
	Arrival time.Duration
	// Run is the true execution time at full allocation.
	Run time.Duration
	// Wall is the user's declared limit (Run padded by a safety factor —
	// users overestimate, which is what makes backfill matter).
	Wall time.Duration
	// Count is the requested slot count (power of two, as in cluster
	// traces).
	Count int
}

// RSL renders the job's GRAM description.
func (j GridJob) RSL() string {
	return fmt.Sprintf(`&(executable=/bin/app)(count=%d)(maxWallTime=%d)`, j.Count, int(j.Wall.Seconds()))
}

// GridJobConfig shapes a compute workload.
type GridJobConfig struct {
	// MeanInterarrival spaces Poisson arrivals.
	MeanInterarrival time.Duration
	// MedianRun and RunSigma shape the lognormal run times.
	MedianRun time.Duration
	RunSigma  float64
	// MaxCount bounds slot requests (counts are 2^k <= MaxCount).
	MaxCount int
	// WallFactor pads Run into the declared wall limit (>= 1).
	WallFactor float64
}

// DefaultGridJobs matches the paper-era profile: hour-scale
// compute-intensive jobs with modest parallelism.
func DefaultGridJobs() GridJobConfig {
	return GridJobConfig{
		MeanInterarrival: 10 * time.Minute,
		MedianRun:        time.Hour,
		RunSigma:         1.0,
		MaxCount:         16,
		WallFactor:       2.0,
	}
}

// GenerateGridJobs produces n jobs with increasing arrival offsets.
func GenerateGridJobs(rng *rand.Rand, cfg GridJobConfig, n int) []GridJob {
	if cfg.WallFactor < 1 {
		cfg.WallFactor = 1
	}
	jobs := make([]GridJob, 0, n)
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		at += Exp(rng, cfg.MeanInterarrival)
		run := LogNormal(rng, cfg.MedianRun, cfg.RunSigma)
		if run < time.Second {
			run = time.Second
		}
		count := 1 << rng.Intn(bits(cfg.MaxCount))
		jobs = append(jobs, GridJob{
			ID:      fmt.Sprintf("job-%04d", i),
			Arrival: at,
			Run:     run,
			Wall:    time.Duration(float64(run) * cfg.WallFactor),
			Count:   count,
		})
	}
	return jobs
}

func bits(max int) int {
	n := 0
	for 1<<n <= max {
		n++
	}
	if n == 0 {
		return 1
	}
	return n
}

// NetService is one long-lived network-intensive service deployment.
type NetService struct {
	ID string
	// Arrival is the deployment offset.
	Arrival time.Duration
	// Lifetime is how long the service stays deployed.
	Lifetime time.Duration
	// Sites is how many points of presence it wants.
	Sites int
	// RateBps is the per-site bandwidth appetite.
	RateBps float64
	// Port is the well-known port the service wants everywhere (Zipf:
	// popular services collide — the E6 contention driver).
	Port int
	// CPUPerSite is deliberately small (fractions of a core).
	CPUPerSite float64
}

// NetServiceConfig shapes a PlanetLab-style service population.
type NetServiceConfig struct {
	MeanInterarrival time.Duration
	MedianLifetime   time.Duration
	LifetimeSigma    float64
	// MaxSites bounds the requested spread.
	MaxSites int
	// BasePort and PortCount define the port universe; PortZipf shapes
	// popularity.
	BasePort  int
	PortCount int
	PortZipf  float64
	// MeanRateBps is the mean per-site bandwidth demand.
	MeanRateBps float64
}

// DefaultNetServices mirrors §3.2's service catalogue (CDNs, overlays,
// measurement, DHTs): long-lived, many vantage points, light CPU.
func DefaultNetServices() NetServiceConfig {
	return NetServiceConfig{
		MeanInterarrival: 30 * time.Minute,
		MedianLifetime:   24 * time.Hour,
		LifetimeSigma:    1.2,
		MaxSites:         20,
		BasePort:         3000,
		PortCount:        50,
		PortZipf:         1.3,
		MeanRateBps:      2e5,
	}
}

// GenerateNetServices produces n service descriptions.
func GenerateNetServices(rng *rand.Rand, cfg NetServiceConfig, n int) []NetService {
	zipf := NewZipf(rng, cfg.PortZipf, cfg.PortCount)
	out := make([]NetService, 0, n)
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		at += Exp(rng, cfg.MeanInterarrival)
		life := LogNormal(rng, cfg.MedianLifetime, cfg.LifetimeSigma)
		if life < time.Minute {
			life = time.Minute
		}
		sites := 1 + rng.Intn(cfg.MaxSites)
		out = append(out, NetService{
			ID:         fmt.Sprintf("svc-%04d", i),
			Arrival:    at,
			Lifetime:   life,
			Sites:      sites,
			RateBps:    rng.ExpFloat64() * cfg.MeanRateBps,
			Port:       cfg.BasePort + zipf.Draw(),
			CPUPerSite: 0.05 + 0.1*rng.Float64(),
		})
	}
	return out
}
