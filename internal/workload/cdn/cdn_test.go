package cdn

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/sim/snaptest"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestCDNGolden pins the striped-vs-single-stream curve for the
// canonical seed byte-for-byte: the quantitative form of the paper's §5
// cooperation claim is part of the repo's contract, so any drift in the
// fluid kernel, Mathis retuning, flow accounting, or fault injection
// surfaces as an explicit, reviewed change. Regenerate with:
//
//	go test ./internal/workload/cdn -run TestCDNGolden -update
func TestCDNGolden(t *testing.T) {
	var buf bytes.Buffer
	Curve(42, DefaultConfig(), CurveProfiles(), 10*time.Minute, 1).Render(&buf)
	golden := filepath.Join("testdata", "cdn_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("CDN curve drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestCDNWorkerIndependence: cells run on private engines, so the table
// must be identical at any worker count.
func TestCDNWorkerIndependence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Requests = 120
	one := Curve(7, cfg, CurveProfiles(), 5*time.Minute, 1).String()
	many := Curve(7, cfg, CurveProfiles(), 5*time.Minute, 4).String()
	if one != many {
		t.Fatalf("curve differs across worker counts:\n-- workers=1 --\n%s-- workers=4 --\n%s", one, many)
	}
}

// TestCDNShape asserts the paper's qualitative claims directly, so a
// golden regeneration cannot silently absorb a regression: striping
// multiplies loss-limited throughput (faster mean fetch everywhere), and
// overlay multipath completes at least as many fetches under partition
// churn as single-stream does.
func TestCDNShape(t *testing.T) {
	for _, prof := range CurveProfiles() {
		cfg := DefaultConfig()
		horizon := 10 * time.Minute

		cfg.Striped = false
		single := New(42, cfg, prof, horizon)
		single.Eng.RunUntil(horizon)

		cfg.Striped = true
		striped := New(42, cfg, prof, horizon)
		striped.Eng.RunUntil(horizon)

		ss, st := single.Stats, striped.Stats
		if st.Done == 0 || ss.Done == 0 {
			t.Fatalf("%s: no completed fetches (single %d, striped %d)", prof.Name, ss.Done, st.Done)
		}
		if st.MeanFetch() >= ss.MeanFetch() {
			t.Errorf("%s: striped mean fetch %v not faster than single %v", prof.Name, st.MeanFetch(), ss.MeanFetch())
		}
		if st.Failed > ss.Failed {
			t.Errorf("%s: striped failed %d > single failed %d — overlay should ride out churn", prof.Name, st.Failed, ss.Failed)
		}
		if got := ss.Hits + ss.Coalesced + ss.Fetches; got != ss.Requests {
			t.Errorf("%s: single request accounting %d ≠ %d", prof.Name, got, ss.Requests)
		}
	}
}

// TestForkVsColdCDN proves the whole scenario graph — caches, in-flight
// fetches, stats, fault windows, tracer counters, and the underlying
// fluid allocator — rewinds exactly on Fork: a run forked mid-churn must
// be byte-identical to a cold one.
func TestForkVsColdCDN(t *testing.T) {
	n := 10
	if testing.Short() {
		n = 3
	}
	profiles := CurveProfiles()
	cfg := DefaultConfig()
	cfg.Requests = 150
	snaptest.Scenario{
		Name: "cdn.churn",
		Build: func(seed int64) (*sim.Engine, func() []byte) {
			s := New(seed, cfg, profiles[1+int(seed)%2], 6*time.Minute)
			render := func() []byte {
				var b bytes.Buffer
				fmt.Fprintf(&b, "%+v\n", s.Stats)
				fmt.Fprintf(&b, "hits=%d misses=%d failed=%d\n",
					s.cHit.Value(), s.cMiss.Value(), s.cFail.Value())
				fmt.Fprintf(&b, "faults applied=%d revoked=%d\n", s.Inj.AppliedN, s.Inj.RevokedN)
				for p := range s.cache {
					fmt.Fprintf(&b, "p%d cached=%d\n", p, len(s.cache[p]))
				}
				fmt.Fprintf(&b, "origin sent=%.0f\n", s.Net.Host("origin").BytesSent)
				return b.Bytes()
			}
			return s.Eng, render
		},
		WarmUntil: 90 * time.Second,
		Horizon:   6 * time.Minute,
	}.Run(t, snaptest.Seeds(1, n))
}
