// Package cdn models a CoDeeN-style PlanetLab content-distribution
// overlay on the simnet data plane: proxy nodes on a ring serve a
// Zipf-popular object mix, pulling misses from a single origin either as
// plain single-stream transfers (the Globus GridFTP default on one TCP
// connection) or as striped multipath pulls relayed through sibling
// proxies (stripes + overlay detours). Swept under faultlab loss and
// partition churn, the two modes produce the paper's §5
// striped-vs-single-stream curve as a deterministic experiment: striping
// multiplies loss-limited Mathis throughput, and multipath keeps misses
// flowing when the direct origin path is cut.
//
// Everything is seeded and snapshot-safe: a (seed, config, profile)
// triple fully determines the run, and the whole scenario registers as a
// SnapRoot so fork-vs-cold differential gates hold.
package cdn

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/faultlab"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// Config shapes one CDN run.
type Config struct {
	// Proxies is the number of overlay proxy nodes on the ring.
	Proxies int
	// Objects is the catalog size; popularity is Zipf(ZipfS) over it.
	Objects int
	ZipfS   float64
	// Requests is the total number of client requests to arrive, with
	// exponential inter-arrival times of mean MeanIA.
	Requests int
	MeanIA   time.Duration
	// MedianBytes and SizeSigma shape the lognormal object-size draw
	// (sizes are fixed per object, drawn once at build).
	MedianBytes float64
	SizeSigma   float64
	// Striped selects striped multipath pulls (3 stripes: direct plus the
	// two ring siblings as relays, pooled mTCP-style) over single-stream.
	Striped bool
	// OriginBps and ProxyBps are the access-link capacities.
	OriginBps, ProxyBps float64
	// BaseLoss is the ambient WAN loss rate; it makes the Mathis cap the
	// binding constraint so stripe count matters even between faults.
	BaseLoss float64
}

// DefaultConfig returns the canonical experiment shape: 8 proxies, a
// 64-object catalog under a heavy-tailed mix, 400 requests.
func DefaultConfig() Config {
	return Config{
		Proxies:     8,
		Objects:     64,
		ZipfS:       1.2,
		Requests:    400,
		MeanIA:      400 * time.Millisecond,
		MedianBytes: 2e6,
		SizeSigma:   0.5,
		OriginBps:   1.25e7,
		ProxyBps:    1.25e7,
		BaseLoss:    0.01,
	}
}

// Stats accumulates the observable outcome of a run.
type Stats struct {
	// Requests = Hits + Coalesced + Fetches (every arrival is exactly one
	// of: cache hit, rider on an in-flight fetch, or a new fetch).
	Requests, Hits, Coalesced, Fetches int
	// Done + Failed ≤ Fetches (the rest are still in flight at horizon).
	Done, Failed int
	// Bytes is the payload delivered into caches by completed fetches.
	Bytes float64
	// FetchTime sums completed fetch durations.
	FetchTime time.Duration
}

// HitRate returns the fraction of requests served without a new origin
// fetch (cache hits plus coalesced riders).
func (s Stats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(s.Requests)
}

// MeanFetch returns the mean completed-fetch duration.
func (s Stats) MeanFetch() time.Duration {
	if s.Done == 0 {
		return 0
	}
	return s.FetchTime / time.Duration(s.Done)
}

// fetch is one in-flight origin pull; later requests for the same object
// at the same proxy ride on it instead of starting a duplicate.
type fetch struct {
	obj, proxy int
	waiters    int
	begun      time.Duration
	flow       *simnet.Flow
	span       obs.SpanContext
}

// Scenario is one constructed CDN run: topology, request process, fault
// schedule, and accumulating stats. All mutable state hangs off this
// struct, which registers itself as a SnapRoot — the snapshot-safety
// contract the differential fork-vs-cold gate checks.
type Scenario struct {
	Eng *sim.Engine
	Net *simnet.Network
	Inj *faultlab.NetInjector

	cfg      Config
	rng      *rand.Rand
	zipf     *workload.Zipf
	sizes    []float64
	cache    []map[int]bool
	inflight []map[int]*fetch
	arrived  int

	Stats Stats

	tr                 *obs.Tracer
	cHit, cMiss, cFail *obs.Counter
}

func proxyName(i int) string { return fmt.Sprintf("p%d", i) }

// New builds the scenario on a fresh engine: origin at the center, the
// proxy ring around it, a faultlab schedule generated from (seed,
// profile) and installed on the bare network, and the first request
// arrival scheduled. Run the engine (or RunUntil a horizon) to execute.
func New(seed int64, cfg Config, profile faultlab.Profile, horizon time.Duration) *Scenario {
	eng := sim.NewEngine(seed)
	net := simnet.New(eng)
	net.BaseLoss = cfg.BaseLoss
	s := &Scenario{Eng: eng, Net: net, cfg: cfg, rng: eng.ForkRand()}
	s.tr = obs.NewTracer(eng)
	net.SetTracer(s.tr)
	s.cHit = s.tr.Counter("cdn.hits")
	s.cMiss = s.tr.Counter("cdn.misses")
	s.cFail = s.tr.Counter("cdn.fetch_failed")

	net.AddSite("origin", 0, 0)
	net.AddHost("origin", "origin", cfg.OriginBps)
	sites := make([]string, cfg.Proxies)
	for i := 0; i < cfg.Proxies; i++ {
		ang := 2 * math.Pi * float64(i) / float64(cfg.Proxies)
		name := proxyName(i)
		net.AddSite(name, 30*math.Cos(ang), 30*math.Sin(ang))
		net.AddHost(name, name, cfg.ProxyBps)
		sites[i] = name
		s.cache = append(s.cache, make(map[int]bool))
		s.inflight = append(s.inflight, make(map[int]*fetch))
	}

	// Object popularity and sizes are drawn from the scenario rng once,
	// up front, so the same seed always yields the same catalog.
	s.zipf = workload.NewZipf(s.rng, cfg.ZipfS, cfg.Objects)
	s.sizes = make([]float64, cfg.Objects)
	for i := range s.sizes {
		s.sizes[i] = float64(workload.LogNormal(s.rng, time.Duration(cfg.MedianBytes), cfg.SizeSigma))
	}

	s.Inj = faultlab.InstallNet(net, faultlab.Generate(seed, profile, sites, horizon))
	eng.SnapRoot("cdn.scenario", s)
	eng.Schedule(workload.Exp(s.rng, cfg.MeanIA), s.arrive)
	return s
}

// arrive serves one client request at a Zipf-drawn object on a uniform
// proxy, then schedules the next arrival.
func (s *Scenario) arrive() {
	s.arrived++
	if s.arrived < s.cfg.Requests {
		s.Eng.Schedule(workload.Exp(s.rng, s.cfg.MeanIA), s.arrive)
	}
	p := s.rng.Intn(s.cfg.Proxies)
	obj := s.zipf.Draw()
	s.Stats.Requests++
	switch {
	case s.cache[p][obj]:
		s.Stats.Hits++
		s.cHit.Inc()
	case s.inflight[p][obj] != nil:
		s.inflight[p][obj].waiters++
		s.Stats.Coalesced++
		s.cHit.Inc()
	default:
		s.cMiss.Inc()
		s.startFetch(p, obj)
	}
}

// startFetch pulls an object from the origin into a proxy's cache:
// single-stream direct, or three pooled stripes fanned across the direct
// path and the two ring siblings as overlay relays.
func (s *Scenario) startFetch(p, obj int) {
	s.Stats.Fetches++
	ft := &fetch{obj: obj, proxy: p, begun: s.Eng.Now()}
	opts := simnet.FlowOpts{Streams: 1}
	if s.cfg.Striped {
		// Overlay routing: stripe across the direct path and the two ring
		// siblings, skipping any route a current partition severs (CoDeeN
		// proxies monitor peer health and route around dead overlay
		// nodes). With every route cut, fall through to a direct attempt
		// whose refusal records the failure.
		dst := proxyName(p)
		k := s.cfg.Proxies
		var paths [][]string
		if !s.Net.Partitioned("origin", dst) {
			paths = append(paths, nil)
		}
		for _, sib := range []int{(p + 1) % k, (p + k - 1) % k} {
			r := proxyName(sib)
			if r != dst && !s.Net.Partitioned("origin", r) && !s.Net.Partitioned(r, dst) {
				paths = append(paths, []string{r})
			}
		}
		if len(paths) > 0 {
			opts = simnet.FlowOpts{Streams: 3, Pooled: true, Paths: paths}
		}
	}
	ft.span = s.tr.Begin("cdn.fetch",
		obs.String("proxy", proxyName(p)), obs.Int("obj", obj),
		obs.Float("bytes", s.sizes[obj]), obs.Int("streams", opts.Streams))
	fl, err := s.Net.StartFlow("origin", proxyName(p), s.sizes[obj], opts,
		func(*simnet.Flow) { s.fetchDone(ft) })
	if err != nil {
		// Refused outright (partitioned or relay down at start).
		s.Stats.Failed++
		s.cFail.Inc()
		ft.span.End(obs.Err(err))
		return
	}
	fl.OnFail = func(_ *simnet.Flow, err error) { s.fetchFail(ft, err) }
	ft.flow = fl
	s.inflight[p][obj] = ft
}

func (s *Scenario) fetchDone(ft *fetch) {
	delete(s.inflight[ft.proxy], ft.obj)
	s.cache[ft.proxy][ft.obj] = true
	s.Stats.Done++
	s.Stats.Bytes += s.sizes[ft.obj]
	s.Stats.FetchTime += s.Eng.Now() - ft.begun
	ft.span.End(obs.Int("waiters", ft.waiters))
}

func (s *Scenario) fetchFail(ft *fetch, err error) {
	delete(s.inflight[ft.proxy], ft.obj)
	s.Stats.Failed++
	s.cFail.Inc()
	ft.span.End(obs.Err(err))
}

// Mode names the transfer strategy for reports.
func (s *Scenario) Mode() string {
	if s.cfg.Striped {
		return "striped"
	}
	return "single"
}

// Curve runs the striped-vs-single comparison across fault profiles,
// each cell on a private engine, and returns the rendered table — the
// repo's quantitative form of the paper's §5 cooperation claim. workers
// bounds parallelism (cells are independent and deterministic, so the
// table is identical at any worker count).
func Curve(seed int64, cfg Config, profiles []faultlab.Profile, horizon time.Duration, workers int) *metrics.Table {
	t := metrics.NewTable("profile", "mode", "requests", "hit%", "fetches", "done", "failed", "mean-fetch-s", "MB/s")
	type cell struct {
		prof    faultlab.Profile
		striped bool
	}
	var cells []cell
	for _, p := range profiles {
		cells = append(cells, cell{p, false}, cell{p, true})
	}
	rows := make([][]any, len(cells))
	perf.ForEach(len(cells), workers, func(i int) {
		c := cells[i]
		run := cfg
		run.Striped = c.striped
		sc := New(seed, run, c.prof, horizon)
		sc.Eng.RunUntil(horizon)
		st := sc.Stats
		rows[i] = []any{
			c.prof.Name, sc.Mode(), st.Requests, 100 * st.HitRate(),
			st.Fetches, st.Done, st.Failed,
			st.MeanFetch().Seconds(), st.Bytes / horizon.Seconds() / 1e6,
		}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

// CurveProfiles returns the canonical churn sweep for the golden
// experiment: no faults, loss/latency churn, and partition-heavy mixes.
func CurveProfiles() []faultlab.Profile {
	// Rates are events/hour; the canonical horizon is 10 minutes, so
	// these land a handful of bursts/cuts per run. Hub joins the origin
	// to the pair pool — cutting a proxy off from the origin is the
	// interesting fault for a pull-through cache.
	quiet := faultlab.Quiet()
	churn := faultlab.Profile{
		Name:     "loss-churn",
		LossRate: 24, ChurnRate: 12,
		MeanBurst: 3 * time.Minute,
		BurstLoss: 0.08, ChurnLatency: 250 * time.Millisecond,
		Hub: "origin",
	}
	cuts := faultlab.Profile{
		Name:          "partitions",
		PartitionRate: 18, LossRate: 12,
		MeanCut: 2 * time.Minute, MeanBurst: 3 * time.Minute,
		BurstLoss: 0.08,
		Hub:       "origin",
	}
	return []faultlab.Profile{quiet, churn, cuts}
}
