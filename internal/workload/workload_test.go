package workload

import (
	"math/rand"
	"testing"
	"time"
)

func TestExpMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		total += Exp(rng, time.Minute)
	}
	mean := total / n
	if mean < 55*time.Second || mean > 65*time.Second {
		t.Errorf("mean = %v, want ~1m", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var xs []time.Duration
	for i := 0; i < 10001; i++ {
		xs = append(xs, LogNormal(rng, time.Hour, 1.0))
	}
	// Median of samples ≈ configured median.
	count := 0
	for _, x := range xs {
		if x < time.Hour {
			count++
		}
	}
	frac := float64(count) / float64(len(xs))
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestZipfHeadHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 1.3, 100)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50]*5 {
		t.Errorf("head %d not dominant over mid %d", counts[0], counts[50])
	}
}

func TestZipfClampsExponent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	z := NewZipf(rng, 0.5, 10) // must not panic despite s<=1
	for i := 0; i < 100; i++ {
		if r := z.Draw(); r < 0 || r >= 10 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestGenerateGridJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	jobs := GenerateGridJobs(rng, DefaultGridJobs(), 200)
	if len(jobs) != 200 {
		t.Fatalf("n = %d", len(jobs))
	}
	prev := time.Duration(-1)
	for _, j := range jobs {
		if j.Arrival <= prev {
			t.Fatal("arrivals not strictly increasing")
		}
		prev = j.Arrival
		if j.Run < time.Second {
			t.Errorf("run %v too small", j.Run)
		}
		if j.Wall < j.Run {
			t.Errorf("wall %v < run %v", j.Wall, j.Run)
		}
		if j.Count < 1 || j.Count > 16 || j.Count&(j.Count-1) != 0 {
			t.Errorf("count %d not a power of two <= 16", j.Count)
		}
	}
}

func TestGridJobRSLParses(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	jobs := GenerateGridJobs(rng, DefaultGridJobs(), 5)
	for _, j := range jobs {
		rslStr := j.RSL()
		if rslStr == "" {
			t.Fatal("empty RSL")
		}
		// Shape check without importing rsl (avoid cycle temptation):
		if rslStr[0] != '&' {
			t.Errorf("RSL = %q", rslStr)
		}
	}
}

func TestGenerateNetServices(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultNetServices()
	svcs := GenerateNetServices(rng, cfg, 300)
	if len(svcs) != 300 {
		t.Fatalf("n = %d", len(svcs))
	}
	portCounts := map[int]int{}
	for _, s := range svcs {
		if s.Sites < 1 || s.Sites > cfg.MaxSites {
			t.Errorf("sites = %d", s.Sites)
		}
		if s.Port < cfg.BasePort || s.Port >= cfg.BasePort+cfg.PortCount {
			t.Errorf("port = %d", s.Port)
		}
		if s.CPUPerSite <= 0 || s.CPUPerSite > 0.2 {
			t.Errorf("cpu = %v (services must be CPU-light)", s.CPUPerSite)
		}
		if s.Lifetime < time.Minute {
			t.Errorf("lifetime = %v", s.Lifetime)
		}
		portCounts[s.Port]++
	}
	// Popularity must be skewed: the hottest port sees many services.
	max := 0
	for _, c := range portCounts {
		if c > max {
			max = c
		}
	}
	if max < 30 {
		t.Errorf("hottest port only %d services; Zipf skew missing", max)
	}
}

func TestDeterminism(t *testing.T) {
	a := GenerateGridJobs(rand.New(rand.NewSource(9)), DefaultGridJobs(), 50)
	b := GenerateGridJobs(rand.New(rand.NewSource(9)), DefaultGridJobs(), 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("grid jobs nondeterministic")
		}
	}
	s1 := GenerateNetServices(rand.New(rand.NewSource(9)), DefaultNetServices(), 50)
	s2 := GenerateNetServices(rand.New(rand.NewSource(9)), DefaultNetServices(), 50)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("services nondeterministic")
		}
	}
}
