// Package repro_test is the benchmark harness: one testing.B per paper
// artifact (Table 1, Figures 1-2) and per quantified-claim experiment
// (E3-E9), regenerating the same tables cmd/gridlab prints. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark reports experiment-specific metrics via b.ReportMetric
// so shapes can be compared across runs; bench time measures the cost of
// regenerating the artifact, not any physical-system claim.
package repro_test

import (
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func BenchmarkTable1Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RenderTable1(io.Discard)
	}
	b.ReportMetric(float64(len(core.Table1())), "abbreviations")
}

func BenchmarkFigure1Sweep(b *testing.B) {
	var pts []core.Fig1Point
	for i := 0; i < b.N; i++ {
		pts = core.Figure1(42, 8)
	}
	for _, p := range pts {
		switch p.Stack {
		case core.StackGlobus:
			b.ReportMetric(p.Functionality, "globus-functionality")
			b.ReportMetric(p.Autonomy, "globus-autonomy")
		case core.StackPlanetLab:
			b.ReportMetric(p.Functionality, "planetlab-functionality")
			b.ReportMetric(p.Autonomy, "planetlab-autonomy")
		}
	}
}

func BenchmarkFigure2SHARPFlow(b *testing.B) {
	steps := 0
	for i := 0; i < b.N; i++ {
		res, err := core.Figure2(42)
		if err != nil {
			b.Fatal(err)
		}
		if err := core.ValidateFigure2(res); err != nil {
			b.Fatal(err)
		}
		steps = len(res.Trace)
	}
	b.ReportMetric(float64(steps), "protocol-steps")
}

func BenchmarkScaleSweep(b *testing.B) {
	for _, n := range []int{10, 50, 100} {
		b.Run(strings.ReplaceAll("sites="+itoa(n), " ", ""), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.RunScale(42, []int{n})
			}
		})
	}
}

func BenchmarkProxyLifetimeSweep(b *testing.B) {
	lifetimes := []time.Duration{time.Hour, 8 * time.Hour, 64 * time.Hour}
	var tab fmtStringer
	for i := 0; i < b.N; i++ {
		tab = core.RunProxyLifetime(42, lifetimes, 200)
	}
	_ = tab
	b.ReportMetric(float64(len(lifetimes)), "sweep-points")
}

func BenchmarkDelegationStyles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RunDelegation(42, 6, 20, 0.3)
	}
}

func BenchmarkAllocationDisciplines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RunAllocation(42, 8, 200)
	}
}

func BenchmarkHeterogeneityGlue(b *testing.B) {
	for _, h := range []int{0, 4, 8} {
		b.Run("dialects="+itoa(h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.RunHeterogeneity(42, []int{h}, 100)
			}
		})
	}
}

func BenchmarkDataGridTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RunDataGrid(42, 100e6, []float64{0, 0.01}, []int{1, 8})
	}
}

func BenchmarkSHARPOversubscription(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RunOversub(42, []float64{0.5, 1.0, 2.0, 3.0})
	}
}

type fmtStringer interface{ String() string }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func BenchmarkAvailabilitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RunAvailability(42, []int{1, 2, 4, 8}, 30*24*time.Hour)
	}
}

func BenchmarkBackfillAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RunBackfillAblation(42, 16, 120)
	}
}

func BenchmarkPoolingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RunPoolingAblation(42, 200e6)
	}
}

func BenchmarkTTLAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RunTTLAblation(42, []time.Duration{time.Minute, 10 * time.Minute}, 100)
	}
}

func BenchmarkManagedAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RunManagedAvailability(42, 3, 30*24*time.Hour)
	}
}
