package main

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// Every example program must build and run to completion quickly: they are
// the repo's documentation-by-code and the first thing a new reader tries.
// Each gets a short wall-clock deadline so a hung simulation (e.g. a flow
// whose completion callback never fires) turns into a test failure instead
// of a stuck CI job.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(root, "examples"))
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		t.Fatal("no example programs found under examples/")
	}
	for _, dir := range dirs {
		t.Run(dir, func(t *testing.T) {
			bin := filepath.Join(t.TempDir(), dir)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+dir)
			build.Dir = root
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			run := exec.CommandContext(ctx, bin)
			run.Dir = root
			out, err := run.CombinedOutput()
			if ctx.Err() == context.DeadlineExceeded {
				t.Fatalf("example hung past deadline\noutput so far:\n%s", out)
			}
			if err != nil {
				t.Fatalf("run failed: %v\n%s", err, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
