package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/perf/scale"
)

// runScale drives the E14 planetary federation experiment. The
// deterministic report goes to stdout (byte-identical at any -workers
// count — CI diffs w1 vs w8); wall-clock throughput, the
// registration-flatness probe, peak RSS, and the BENCH_ lines go to
// stderr, since they vary run to run. The wall clock is injected here:
// internal packages are wall-time-free by lint.
func runScale() error {
	cfg := scale.DefaultConfig()
	cfg.Sites = *scaleSites
	cfg.Regions = *scaleRegions
	if cfg.Sites <= 0 {
		return fmt.Errorf("scale: -sites must be positive")
	}
	cfg.NodesPerSite = *scaleNodes / cfg.Sites
	if cfg.NodesPerSite <= 0 {
		cfg.NodesPerSite = 1
	}
	cfg.LeasesPerSite = *scaleLeases / cfg.Sites
	if cfg.LeasesPerSite <= 0 {
		cfg.LeasesPerSite = 1
	}
	start := time.Now()
	cfg.WallClock = func() time.Duration { return time.Since(start) }

	rep := scale.Run(*seed, cfg, *workers)
	rep.Render(os.Stdout)

	for _, line := range rep.Perf {
		fmt.Fprintf(os.Stderr, "perf: %s\n", line)
	}
	wall := time.Since(start).Seconds()
	if wall > 0 {
		fmt.Fprintf(os.Stderr, "BENCH_scale_sites_per_sec %.2f\n", float64(rep.SitesN)/wall)
		fmt.Fprintf(os.Stderr, "BENCH_scale_leases_per_sec %.0f\n", float64(rep.GrantedN)/wall)
	}
	if rss, ok := peakRSSBytes(); ok {
		fmt.Fprintf(os.Stderr, "BENCH_scale_peak_rss_bytes %d\n", rss)
		if rep.LiveN > 0 {
			fmt.Fprintf(os.Stderr, "perf: rss/live-lease = %.0f bytes (O(live) check: leases dominate at full scale)\n",
				float64(rss)/float64(rep.LiveN))
		}
	}

	// Registration-flatness probe: steady-state refresh cost per record
	// against a 64-site index vs the full -sites index (min-of-3 rounds
	// each, inside the probe). The acceptance gate is "within 10% from
	// 64 -> 1000 sites"; emit the ratio so CI and readers can eyeball
	// it. Kept out of the deterministic report (it is pure wall time).
	probeSites, window := cfg.Sites, 64
	if probeSites >= 2*window {
		small, large := scale.RegistrationFlatness(*seed, cfg, probeSites, window, cfg.WallClock)
		if small > 0 {
			fmt.Fprintf(os.Stderr, "perf: register flatness at%d=%.0fns/rec at%d=%.0fns/rec ratio=%.3f\n",
				window, small, probeSites, large, large/small)
			fmt.Fprintf(os.Stderr, "BENCH_scale_register_flatness %.3f\n", large/small)
		}
	}
	return nil
}

// peakRSSBytes reads the process high-water resident set from
// /proc/self/status (VmHWM). Linux-only; reports ok=false elsewhere.
func peakRSSBytes() (int64, bool) {
	fp, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer fp.Close()
	sc := bufio.NewScanner(fp)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb * 1024, true
	}
	return 0, false
}
