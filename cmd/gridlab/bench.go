package main

import (
	"fmt"
	"os"

	"repro/internal/perf/bench"
	"repro/internal/perf/benches"
)

// runBench measures the registered benchmark specs (sim-kernel micro +
// chaos-sweep macro), optionally emits JSON, and optionally compares
// against a committed baseline, failing on large regressions:
//
//	gridlab bench -json -o BENCH_baseline.json        # record a baseline
//	gridlab bench -benchtime 100x -baseline BENCH_baseline.json
func runBench() error {
	results, err := bench.RunSpecs(benches.All(), *benchTime)
	if err != nil {
		return err
	}

	out := os.Stdout
	if *benchOut != "" {
		fp, err := os.Create(*benchOut)
		if err != nil {
			return err
		}
		defer fp.Close()
		out = fp
	}
	if *benchJSON || *benchOut != "" {
		if err := bench.WriteJSON(out, results); err != nil {
			return err
		}
	} else {
		for _, r := range results {
			fmt.Fprintf(out, "%-28s %14.0f ns/op %8d allocs/op %12d B/op", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
			if r.EventsPerSec > 0 {
				fmt.Fprintf(out, " %12.0f events/s", r.EventsPerSec)
			}
			if r.SweepsPerSec > 0 {
				fmt.Fprintf(out, " %8.2f sweeps/s", r.SweepsPerSec)
			}
			fmt.Fprintln(out)
		}
	}

	if *benchBase != "" {
		fp, err := os.Open(*benchBase)
		if err != nil {
			return err
		}
		baseline, err := bench.ReadJSON(fp)
		fp.Close()
		if err != nil {
			return err
		}
		if regs := bench.Compare(results, baseline, *benchRatio); len(regs) > 0 {
			for _, reg := range regs {
				fmt.Fprintf(os.Stderr, "regression: %s\n", reg)
			}
			return fmt.Errorf("%d benchmark regression(s) vs %s", len(regs), *benchBase)
		}
		fmt.Fprintf(os.Stderr, "no regressions vs %s (allowed ratio %.1fx)\n", *benchBase, *benchRatio)
	}
	return nil
}
