// Command gridlab regenerates every table and figure of the reproduction
// of "Globus and PlanetLab Resource Management Solutions Compared"
// (HPDC-13, 2004). Each subcommand corresponds to one experiment in
// DESIGN.md; `gridlab all` runs the full set in order.
//
// Usage:
//
//	gridlab [-seed N] <table1|fig1|fig2|scale|proxylife|delegation|allocation|hetero|datagrid|oversub|chaos|all>
//	gridlab chaos [-seed N] [-profile quiet|crashes|partitions|mixed] [-sweep N]
//	gridlab byzantine [-seed N] [-profile P] [-sweep SEEDS] [-workers N]
//	             [-resilience] [-lease D] [-reconcile D] [-bisect [-bisect-windows K]]
//	gridlab trace <fig2|delegation|chaos> [-seed N] [-o FILE] [-format jsonl|chrome|timeline]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultlab"
	"repro/internal/obs"
	"repro/internal/perf/chaos"
	"repro/internal/workload/cdn"
)

var (
	seed       = flag.Int64("seed", 42, "simulation seed (runs are deterministic per seed)")
	profile    = flag.String("profile", "mixed", "chaos fault profile (quiet|crashes|partitions|mixed)")
	sweep      = flag.Int("sweep", 0, "chaos: run N seeds x all profiles instead of one run")
	bisect     = flag.Bool("bisect", false, "chaos: localize the first failing audit by snapshot bisection")
	bisectWins = flag.Int("bisect-windows", 8, "chaos: coarse snapshot windows for -bisect")
	resilience = flag.Bool("resilience", false, "chaos: enable the retry/breaker/keepalive kit")
	leaseTerm  = flag.Duration("lease", 0, "chaos: service lease term (0 = one lease outliving the run)")
	reconcile  = flag.Duration("reconcile", 0, "chaos: periodic repair-pass interval (0 = event-driven only)")
	traceOut   = flag.String("o", "", "trace/bench: output file (default stdout)")
	traceFmt   = flag.String("format", "jsonl", "trace: export format (jsonl|chrome|timeline)")
	workers    = flag.Int("workers", 1, "sweep fan-out: worker goroutines (0 = GOMAXPROCS; output is identical at any count)")
	benchTime  = flag.String("benchtime", "", "bench: per-benchmark time or iteration budget (e.g. 1s, 100x)")
	benchJSON  = flag.Bool("json", false, "bench: emit JSON instead of the aligned text report")
	benchBase  = flag.String("baseline", "", "bench: baseline JSON file to compare against (fail on regression)")
	benchRatio = flag.Float64("maxratio", 2.0, "bench: allowed ns/op ratio vs baseline before failing")

	scaleSites   = flag.Int("sites", 1000, "scale: federation site count")
	scaleNodes   = flag.Int("nodes", 100000, "scale: total sensor nodes across the federation")
	scaleLeases  = flag.Int("leases", 1000000, "scale: total concurrent-lease target across the federation")
	scaleRegions = flag.Int("regions", 16, "scale: MDS shard / parallel-cell count")
)

// benchOut aliases -o for the bench subcommand (shared with trace).
var benchOut = traceOut

// traceScenario is the positional operand of `gridlab trace`.
var traceScenario = "fig2"

type command struct {
	name, desc string
	run        func() error
}

func commands() []command {
	return []command{
		{"table1", "Table 1: abbreviation glossary mapped to modules", func() error {
			core.RenderTable1(os.Stdout)
			return nil
		}},
		{"fig1", "Figure 1: site autonomy vs VO-level functionality", func() error {
			core.RenderFigure1(os.Stdout, *seed, 12)
			fmt.Println("\nSweep over homogeneous autonomy demand alpha:")
			core.Figure1SweepParallel(*seed, 8, []float64{0.1, 0.3, 0.5, 0.7, 0.9}, *workers).Render(os.Stdout)
			return nil
		}},
		{"fig2", "Figure 2: SHARP ticket -> lease -> VM protocol trace", func() error {
			return core.RenderFigure2(os.Stdout, *seed)
		}},
		{"e3", "E3: federation scale sweep (paper: GT 20-50 sites, PlanetLab 155 -> ~1000)", func() error {
			core.RunScaleParallel(*seed, []int{10, 50, 100, 200, 500, 1000}, *workers).Render(os.Stdout)
			return nil
		}},
		{"scale", "E14: planetary federation (sharded MDS + batched SHARP + compact leases)", runScale},
		{"proxylife", "E4: proxy-certificate lifetime tradeoff", func() error {
			core.RunProxyLifetimeParallel(*seed, []time.Duration{
				time.Hour, 2 * time.Hour, 4 * time.Hour, 8 * time.Hour,
				16 * time.Hour, 32 * time.Hour, 64 * time.Hour,
			}, 500, *workers).Render(os.Stdout)
			return nil
		}},
		{"delegation", "E5: identity vs usage delegation under policy churn", func() error {
			for _, churn := range []float64{0, 0.5, 0.9} {
				fmt.Printf("churn probability %.2f:\n", churn)
				core.RunDelegation(*seed, 10, 50, churn).Render(os.Stdout)
				fmt.Println()
			}
			return nil
		}},
		{"allocation", "E6: best-effort vs reserved; FCFS port conflicts", func() error {
			core.RunAllocationParallel(*seed, 10, 300, *workers).Render(os.Stdout)
			return nil
		}},
		{"hetero", "E7: heterogeneity glue cost vs uniform node interface", func() error {
			core.RunHeterogeneityParallel(*seed, []int{0, 1, 2, 4, 8}, 200, *workers).Render(os.Stdout)
			return nil
		}},
		{"datagrid", "E8: striped GridFTP +/- PlanetLab multipath overlay", func() error {
			core.RunDataGridParallel(*seed, 1e9, []float64{0, 0.005, 0.01, 0.02}, []int{1, 2, 4, 8, 16}, *workers).Render(os.Stdout)
			return nil
		}},
		{"oversub", "E9: SHARP ticket oversubscription sweep", func() error {
			core.RunOversubParallel(*seed, []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}, *workers).Render(os.Stdout)
			return nil
		}},
		{"avail", "E10/E11: availability under failures (analytic + managed service)", func() error {
			core.RunAvailability(*seed, []int{1, 2, 3, 4, 6, 8}, 90*24*time.Hour).Render(os.Stdout)
			fmt.Println("\nE11: live managed service vs static placement (12 sites, k=3, 90 days):")
			core.RunManagedAvailability(*seed, 3, 90*24*time.Hour).Render(os.Stdout)
			return nil
		}},
		{"probes", "probe-by-probe functionality matrix across all three stacks", func() error {
			specs := make([]core.SiteSpec, 6)
			for i := range specs {
				specs[i] = core.SiteSpec{
					Name: fmt.Sprintf("s%d", i), X: float64(10 * (i + 1)), Y: 8,
					Nodes: 2, ClusterSlots: 16, Policy: core.PlanetLabSitePolicy(),
				}
			}
			core.RenderProbeMatrix(os.Stdout, *seed, specs)
			return nil
		}},
		{"chaos", "fault injection: seed-driven faults + cross-stack invariant audit", func() error {
			cfg := faultlab.DefaultChaosConfig()
			cfg.Resilience = *resilience
			cfg.Lease = *leaseTerm
			cfg.ReconcileEvery = *reconcile
			if *sweep > 0 {
				res := chaos.Sweep(*seed, *sweep, faultlab.Profiles(), cfg, *workers)
				fmt.Print(res)
				if !res.OK() {
					return fmt.Errorf("invariant violations found")
				}
				return nil
			}
			p, err := faultlab.ProfileByName(*profile)
			if err != nil {
				return err
			}
			if *bisect {
				res := faultlab.Bisect(*seed, p, cfg, *bisectWins)
				fmt.Print(res)
				if !res.OK() {
					fmt.Printf("repro: %s\n", res.Report.Repro())
					return fmt.Errorf("%d invariant violations", len(res.Report.Violations))
				}
				return nil
			}
			rep := faultlab.RunChaos(*seed, p, cfg)
			fmt.Print(rep.Schedule)
			fmt.Println()
			for _, line := range rep.Trace {
				fmt.Println(line)
			}
			fmt.Println()
			fmt.Print(rep.Summary)
			if !rep.OK() {
				fmt.Println("\ninvariant violations:")
				for _, v := range rep.Violations {
					fmt.Printf("  %s\n", v)
				}
				fmt.Printf("repro: %s\n", rep.Repro())
				return fmt.Errorf("%d invariant violations", len(rep.Violations))
			}
			fmt.Println("\nall invariants held")
			return nil
		}},
		{"byzantine", "E13: adversarial brokers vs reputation/collateral defense, 20-seed sweep", func() error {
			cfg := faultlab.DefaultByzantineChaosConfig()
			p, err := faultlab.ProfileByName(*profile)
			if err != nil {
				return err
			}
			seeds := *sweep
			if seeds <= 0 {
				seeds = 20
			}
			res := chaos.ByzantineSweep(*seed, seeds, p, cfg, *workers)
			fmt.Print(res)
			if !res.OK() {
				return fmt.Errorf("byzantine sweep failed its acceptance gate")
			}
			return nil
		}},
		{"cdn", "E12: CoDeeN-style overlay CDN, striped multipath vs single-stream under churn", func() error {
			cdn.Curve(*seed, cdn.DefaultConfig(), cdn.CurveProfiles(), 10*time.Minute, *workers).Render(os.Stdout)
			return nil
		}},
		{"trace", "run a scenario (fig2|delegation|chaos) with tracing on and export the trace", runTrace},
		{"bench", "kernel micro- and sweep macro-benchmarks with baseline regression check", runBench},
		{"recs", "§6 recommendations mapped to their demonstrations in this repo", func() error {
			core.RenderRecommendations(os.Stdout)
			return nil
		}},
		{"ablation", "A1-A3: backfill, multipath pooling, MDS refresh ablations", func() error {
			fmt.Println("A1: EASY backfill vs pure FCFS (32 slots, 200 jobs):")
			core.RunBackfillAblation(*seed, 32, 200).Render(os.Stdout)
			fmt.Println("\nA2: static vs pooled multipath split (400 MB, asymmetric paths):")
			core.RunPoolingAblation(*seed, 400e6).Render(os.Stdout)
			fmt.Println("\nA3: MDS soft-state refresh period (200 resources):")
			core.RunTTLAblation(*seed, []time.Duration{
				30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute, 10 * time.Minute,
			}, 200).Render(os.Stdout)
			return nil
		}},
	}
}

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	// Allow flags after the subcommand too: gridlab chaos -seed 7 -profile
	// crashes. `trace` additionally takes one positional scenario operand,
	// on either side of the flags.
	rest := flag.Args()[1:]
	if name == "trace" && len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		traceScenario = rest[0]
		rest = rest[1:]
	}
	if len(rest) > 0 {
		if err := flag.CommandLine.Parse(rest); err != nil {
			os.Exit(2)
		}
		if flag.NArg() != 0 {
			if name == "trace" && flag.NArg() == 1 {
				traceScenario = flag.Arg(0)
			} else {
				usage()
				os.Exit(2)
			}
		}
	}
	cmds := commands()
	if name == "all" {
		for _, c := range cmds {
			if c.name == "trace" || c.name == "bench" || c.name == "scale" {
				continue // machine-readable exports / heavyweight measurements
			}
			fmt.Printf("==== %s: %s ====\n", c.name, c.desc)
			if err := c.run(); err != nil {
				fmt.Fprintf(os.Stderr, "gridlab %s: %v\n", c.name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	for _, c := range cmds {
		if c.name == name {
			if err := c.run(); err != nil {
				fmt.Fprintf(os.Stderr, "gridlab %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "gridlab: unknown command %q\n\n", name)
	usage()
	os.Exit(2)
}

// runTrace executes one scenario with the obs layer enabled and exports
// the resulting trace in the requested format.
func runTrace() error {
	var tr *obs.Tracer
	switch traceScenario {
	case "fig2":
		res, t, err := core.Figure2Traced(*seed)
		if err != nil {
			return err
		}
		if err := core.ValidateFigure2(res); err != nil {
			return err
		}
		tr = t
	case "delegation":
		t, err := core.TraceDelegation(*seed)
		if err != nil {
			return err
		}
		tr = t
	case "chaos":
		p, err := faultlab.ProfileByName(*profile)
		if err != nil {
			return err
		}
		cfg := faultlab.DefaultChaosConfig()
		cfg.Trace = true
		rep := faultlab.RunChaos(*seed, p, cfg)
		tr = rep.Tracer
	default:
		return fmt.Errorf("unknown trace scenario %q (want fig2|delegation|chaos)", traceScenario)
	}
	out := os.Stdout
	if *traceOut != "" {
		fp, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer fp.Close()
		out = fp
	}
	switch *traceFmt {
	case "jsonl":
		return tr.WriteJSONL(out)
	case "chrome":
		return tr.WriteChromeTrace(out)
	case "timeline":
		tr.WriteTimeline(out, 72)
		return nil
	default:
		return fmt.Errorf("unknown trace format %q (want jsonl|chrome|timeline)", *traceFmt)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: gridlab [-seed N] <command>\n\ncommands:\n")
	for _, c := range commands() {
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", c.name, c.desc)
	}
	fmt.Fprintf(os.Stderr, "  %-11s run every experiment in order\n", "all")
	fmt.Fprintf(os.Stderr, "\ntrace usage: gridlab trace <fig2|delegation|chaos> [-seed N] [-o FILE] [-format jsonl|chrome|timeline]\n")
}
