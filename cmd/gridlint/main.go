// Command gridlint enforces gridlab's determinism & correctness
// contract with a stdlib-only static analyzer suite (see internal/lint):
//
//	walltime     no wall-clock reads in internal/ — time flows through sim.Engine
//	globalrand   no package-level math/rand draws — inject a seeded *rand.Rand
//	maporder     no order-sensitive effects inside map iteration
//	errdrop      no discarded errors from domain-critical calls
//	jitterrand   no composite-literal resilience executors — use the New* constructors
//	enginerace   no goroutine capture or channel transfer of engine state
//	snapcapture  no engine-scheduled closures over mutable captures (Fork-invisible)
//	snapleaf     no chan/unsafe.Pointer/mutable-func fields reachable from a SnapRoot
//	snaproot     state mutated by engine events must be SnapRoot-reachable
//
// Usage:
//
//	go run ./cmd/gridlint ./...
//
// gridlint exits 0 when the tree is clean, 1 on findings, 2 on usage or
// load errors, so CI can gate on it. A finding is suppressed — with a
// mandatory, audit-trailed reason — by a directive on the offending
// line or the line above:
//
//	//gridlint:ignore <analyzer> <reason>
//
// Stale directives (suppressing nothing), unknown analyzer names, and
// missing reasons are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	var (
		runSpec = flag.String("run", "", "comma-separated analyzer subset to run (default: all)")
		tests   = flag.Bool("tests", false, "also analyze _test.go files")
		verbose = flag.Bool("v", false, "list suppressed findings with their ignore reasons")
		jsonOut = flag.Bool("json", false, "emit findings as JSON")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gridlint [flags] [packages]\n\n"+
			"Packages default to ./... relative to the enclosing module.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*runSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridlint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridlint:", err)
		os.Exit(2)
	}
	loader.IncludeTests = *tests
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridlint:", err)
		os.Exit(2)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "gridlint: warning: %s: type check: %v\n", pkg.Path, terr)
		}
	}

	res := lint.Run(loader.Fset, pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "gridlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
		if *verbose {
			for _, f := range res.Suppressed {
				fmt.Printf("suppressed: %s: %s: %s (reason: %s)\n",
					f.Pos, f.Analyzer, f.Message, f.IgnoreReason)
			}
		}
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "gridlint: %d finding(s) in %d package(s)\n", len(res.Findings), len(pkgs))
		os.Exit(1)
	}
}
