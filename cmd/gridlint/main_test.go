package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildGridlint compiles the binary once per test run.
func buildGridlint(t *testing.T, root string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gridlint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/gridlint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/gridlint: %v\n%s", err, out)
	}
	return bin
}

// TestGridlintExitCodes asserts the CI contract: exit 0 on the clean
// repository, exit 1 on the known-bad corpus, exit 2 on usage errors.
func TestGridlintExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("gridlint smoke test skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := buildGridlint(t, root)

	run := func(args ...string) (int, string) {
		cmd := exec.Command(bin, args...)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		if err == nil {
			return 0, string(out)
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), string(out)
		}
		t.Fatalf("gridlint %v: %v", args, err)
		return -1, ""
	}

	if code, out := run("./..."); code != 0 {
		t.Errorf("gridlint ./... on clean repo: exit %d, want 0\n%s", code, out)
	}
	code, out := run("./internal/lint/testdata/src/...")
	if code != 1 {
		t.Errorf("gridlint on known-bad corpus: exit %d, want 1\n%s", code, out)
	}
	for _, analyzer := range []string{
		"walltime", "globalrand", "maporder", "errdrop",
		"snapcapture", "snapleaf", "snaproot",
	} {
		if !strings.Contains(out, analyzer+":") {
			t.Errorf("corpus run output missing findings from %s:\n%s", analyzer, out)
		}
	}
	if code, _ := run("-run", "nosuchanalyzer", "./..."); code != 2 {
		t.Errorf("gridlint -run nosuchanalyzer: exit %d, want 2", code)
	}
}

// TestGridlintList keeps the -list inventory in sync with the suite.
func TestGridlintList(t *testing.T) {
	if testing.Short() {
		t.Skip("gridlint smoke test skipped in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := buildGridlint(t, root)
	cmd := exec.Command(bin, "-list")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("gridlint -list: %v", err)
	}
	for _, analyzer := range []string{
		"walltime", "globalrand", "maporder", "errdrop",
		"jitterrand", "enginerace", "snapcapture", "snapleaf", "snaproot",
	} {
		if !strings.Contains(string(out), analyzer) {
			t.Errorf("gridlint -list missing %q:\n%s", analyzer, out)
		}
	}
	if _, err := os.Stat(filepath.Join(root, "internal", "lint")); err != nil {
		t.Fatalf("internal/lint missing: %v", err)
	}
}
