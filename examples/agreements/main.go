// agreements demonstrates the paper's §4.2.1 complementarity claim — "a
// capability is in fact an implied agreement" and WS-Agreement leaves
// "the enforcement mechanism on the provider side ... not specified" — by
// negotiating the same kind of compute agreement against three provider
// backends: PlanetLab capability minting, a Globus batch-queue advance
// reservation, and SHARP ticket+lease issuance (§6's recommendation).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/agreement"
	"repro/internal/capability"
	"repro/internal/gram"
	"repro/internal/identity"
	"repro/internal/sharp"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func main() {
	// One explicit seed drives the engine and every rand stream: rerun
	// with the same -seed and the output is byte-identical (the
	// determinism contract gridlint enforces — no global math/rand).
	seed := flag.Int64("seed", 31, "deterministic run seed for engine and rand streams")
	flag.Parse()
	eng := sim.NewEngine(*seed)
	net := simnet.New(eng)
	net.AddSite("consumer-site", 0, 0)
	net.AddSite("provider-site", 35, 10)
	net.AddHost("consumer", "consumer-site", 1e6)
	for _, h := range []string{"pl-node", "cluster", "sharp-site"} {
		net.AddHost(h, "provider-site", 1e7)
	}
	rng := rand.New(rand.NewSource(*seed))

	// Backend 1: PlanetLab capabilities.
	nmPL := capability.NewNodeManager("pl-node", eng, rng,
		map[capability.ResourceType]float64{capability.CPU: 4, capability.Network: 1e7})
	respPL := agreement.NewResponder(eng, net, "pl-node",
		&agreement.CapabilityEnforcement{Eng: eng, NM: nmPL})
	respPL.AddTemplate(agreement.Template{Name: "compute", Constraints: []agreement.TermConstraint{
		{Name: "cpu", Min: 0.1, Max: 4}}})

	// Backend 2: batch-queue advance reservation.
	bm := gram.NewBatchManager(eng, "pbs", 64)
	respBatch := agreement.NewResponder(eng, net, "cluster", &agreement.BatchEnforcement{BM: bm})
	respBatch.AddTemplate(agreement.Template{Name: "compute", Constraints: []agreement.TermConstraint{
		{Name: "slots", Min: 1, Max: 64},
		{Name: "start", Min: 0, Max: 1e9},
		{Name: "duration", Min: 60, Max: 864000}}})

	// Backend 3: SHARP ticket + lease.
	nmSharp := capability.NewNodeManager("sharp-site", eng, rng,
		map[capability.ResourceType]float64{capability.CPU: 8})
	auth := sharp.NewAuthority(eng, "sharp-site", identity.NewPrincipal("auth", rng), nmSharp,
		map[capability.ResourceType]float64{capability.CPU: 8})
	respSharp := agreement.NewResponder(eng, net, "sharp-site", &agreement.SharpEnforcement{
		Authority: auth, Holder: identity.NewPrincipal("responder", rng), Clock: eng})
	respSharp.AddTemplate(agreement.Template{Name: "compute", Constraints: []agreement.TermConstraint{
		{Name: "cpu", Min: 0.1, Max: 8}}})

	// One consumer negotiates with all three.
	offers := []struct {
		provider string
		offer    agreement.Offer
	}{
		{"pl-node", agreement.Offer{Template: "compute",
			Terms: map[string]float64{"cpu": 2}, Lifetime: 4 * time.Hour, Initiator: "alice"}},
		{"cluster", agreement.Offer{Template: "compute",
			Terms: map[string]float64{"slots": 16, "start": 3600, "duration": 7200}, Initiator: "alice"}},
		{"sharp-site", agreement.Offer{Template: "compute",
			Terms: map[string]float64{"cpu": 6}, Lifetime: 4 * time.Hour, Initiator: "alice"}},
	}
	for _, o := range offers {
		o := o
		agreement.Create(net, "consumer", o.provider, o.offer, time.Minute,
			func(ack agreement.Ack, err error) {
				if err != nil {
					fmt.Printf("%-11s REJECTED: %v\n", o.provider, err)
					return
				}
				fmt.Printf("%-11s %s -> %v\n", o.provider, ack.ID, ack.State)
			})
	}
	eng.RunUntil(time.Minute)

	fmt.Println("\nprovider-side commitments:")
	fmt.Printf("  pl-node    free cpu: %.1f (2 committed by capability)\n", nmPL.Available(capability.CPU))
	fmt.Printf("  cluster    queue reservation admitted (16 slots, t+1h for 2h)\n")
	fmt.Printf("  sharp-site free cpu: %.1f (6 leased via ticket)\n", nmSharp.Available(capability.CPU))

	// Oversized renegotiation attempt fails atomically on the SHARP side.
	fmt.Println("\nrenegotiating sharp-site agreement 6 -> 8 cpu (only 2 free):")
	var sharpID string
	// The third created agreement on sharp-site is ag1 there.
	sharpID = "sharp-site/ag1"
	net.Call("consumer", "sharp-site", agreement.SvcRenegotiate, agreement.RenegotiateRequest{
		ID: sharpID,
		Offer: agreement.Offer{Template: "compute",
			Terms: map[string]float64{"cpu": 8}, Lifetime: 4 * time.Hour},
	}, time.Minute, func(_ any, err error) {
		if err != nil {
			fmt.Printf("  refused (original stays observed): %v\n", err)
		} else {
			fmt.Println("  accepted")
		}
	})
	eng.RunUntil(2 * time.Minute)
	fmt.Printf("  sharp-site agreement state: %v, free cpu still %.1f\n",
		respSharp.Agreement(sharpID).State(), nmSharp.Available(capability.CPU))
}
