// Quickstart: build the same 4-site candidate population as a Globus
// federation and as a PlanetLab deployment, run the VO-level probe suite
// against both, and print the comparison — the paper's Figure 1 in ~40
// lines of client code.
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	specs := []core.SiteSpec{
		{Name: "duke", X: 10, Y: 5, Nodes: 2, ClusterSlots: 16, Policy: core.PlanetLabSitePolicy()},
		{Name: "chicago", X: 25, Y: 20, Nodes: 2, ClusterSlots: 32, Policy: core.PlanetLabSitePolicy()},
		{Name: "intel", X: 60, Y: 10, Nodes: 2, ClusterSlots: 8, Policy: core.GlobusSitePolicy(true, true)},
		{Name: "anl", X: 28, Y: 22, Nodes: 2, ClusterSlots: 64, Policy: core.GlobusSitePolicy(true, false)},
	}

	table := metrics.NewTable("probe", "globus", "planetlab", "hybrid")
	results := make(map[core.Stack]core.FunctionalityReport)
	for _, stack := range []core.Stack{core.StackGlobus, core.StackPlanetLab, core.StackHybrid} {
		f := core.Build(stack, core.Config{Seed: 1}, specs)
		results[stack] = core.RunProbes(f)
		fmt.Printf("%-9s joined %d/%d sites, mean member autonomy %.2f\n",
			stack, len(f.JoinedSites()), len(f.Sites), f.MeanAutonomy())
	}
	fmt.Println()

	names := make([]string, 0)
	for name := range results[core.StackGlobus].Results {
		names = append(names, name)
	}
	sort.Strings(names)
	mark := func(err error) string {
		if err == nil {
			return "yes"
		}
		return "-"
	}
	for _, name := range names {
		table.AddRow(name,
			mark(results[core.StackGlobus].Results[name]),
			mark(results[core.StackPlanetLab].Results[name]),
			mark(results[core.StackHybrid].Results[name]))
	}
	table.AddRow("TOTAL",
		fmt.Sprintf("%d/%d", results[core.StackGlobus].Passed, results[core.StackGlobus].Total),
		fmt.Sprintf("%d/%d", results[core.StackPlanetLab].Passed, results[core.StackPlanetLab].Total),
		fmt.Sprintf("%d/%d", results[core.StackHybrid].Passed, results[core.StackHybrid].Total))
	table.Render(os.Stdout)
}
