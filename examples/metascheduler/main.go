// metascheduler demonstrates the Globus-side VO scheduling path of
// §4.2.2: a user delegates a proxy to a matchmaker broker, which
// discovers clusters through MDS, submits with the user's identity,
// retries around a site that blacklists her, and finally runs a DUROC
// all-or-nothing co-allocation — including the abort path.
package main

import (
	"fmt"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/gram"
	"repro/internal/mds"
)

func main() {
	specs := []core.SiteSpec{
		{Name: "ncsa", X: 10, Y: 0, ClusterSlots: 32, Policy: core.GlobusSitePolicy(true, true)},
		{Name: "sdsc", X: 45, Y: 10, ClusterSlots: 16, Policy: core.GlobusSitePolicy(true, true)},
		{Name: "anl", X: 12, Y: 3, ClusterSlots: 64, Policy: core.GlobusSitePolicy(false, true)},
	}
	f := core.Build(core.StackGlobus, core.Config{Seed: 99}, specs)
	user := f.User("/O=Grid/CN=alice")
	proxy, err := user.Delegate("alice/proxy-12h", f.Eng.Now(), 12*time.Hour, nil, f.Rng)
	if err != nil {
		panic(err)
	}
	fmt.Printf("delegated %s (subject resolves to %q)\n\n", "alice/proxy-12h", "/O=Grid/CN=alice")

	// 1. Plain brokered placement.
	submit := func(note, rsl string, filters []mds.Filter) {
		f.Matchmaker.SubmitJob(proxy, gram.JobSpec{RSL: rsl, ActualRun: 30 * time.Minute}, filters,
			func(p broker.Placement, err error) {
				if err != nil {
					fmt.Printf("%-28s FAILED: %v\n", note, err)
					return
				}
				fmt.Printf("%-28s placed at %s as %s\n", note, p.Gatekeeper, p.JobID)
			})
		f.Eng.RunUntil(f.Eng.Now() + 2*time.Minute)
	}
	submit("32-way hour job:", `&(executable=/bin/cactus)(count=32)(maxWallTime=3600)`, nil)
	submit("job needing >=60 cpus:", `&(executable=/bin/big)(count=60)(maxWallTime=3600)`,
		[]mds.Filter{{Attr: "cpus", Op: mds.FGe, Value: "60"}})

	// 2. A site turns hostile mid-campaign; the broker routes around it.
	for _, s := range f.JoinedSites() {
		if s.Spec.Name == "ncsa" {
			s.Gridmap.Blacklist("/O=Grid/CN=alice")
		}
	}
	fmt.Println("\nncsa blacklists alice; resubmitting:")
	submit("16-way job after churn:", `&(executable=/bin/app)(count=16)(maxWallTime=600)`, nil)
	fmt.Printf("broker hops so far: %d, placements: %d, held proxies: %d\n",
		f.Matchmaker.Hops, f.Matchmaker.PlacedN, len(f.Matchmaker.HeldProxies()))

	// 3. DUROC co-allocation: succeeds across two friendly sites, then
	// aborts atomically when one leg includes the hostile site.
	var gks []string
	for _, s := range f.JoinedSites() {
		gks = append(gks, s.Host)
	}
	co := func(note string, hosts []string) {
		parts := make([]broker.Part, len(hosts))
		for i, h := range hosts {
			parts[i] = broker.Part{Gatekeeper: h, Spec: gram.JobSpec{
				RSL: `&(executable=/bin/coupled)(count=8)(maxWallTime=1800)`, ActualRun: 20 * time.Minute}}
		}
		f.CoAlloc.CoAllocate(proxy, parts, func(ps []broker.Placement, err error) {
			if err != nil {
				fmt.Printf("%-28s aborted: %v\n", note, err)
				return
			}
			fmt.Printf("%-28s %d parts running\n", note, len(ps))
		})
		f.Eng.RunUntil(f.Eng.Now() + 2*time.Minute)
	}
	fmt.Println("\nDUROC co-allocation:")
	co("sdsc + anl:", []string{"gk-sdsc", "gk-anl"})
	co("sdsc + ncsa (blacklisted):", []string{"gk-sdsc", "gk-ncsa"})
	fmt.Printf("co-allocations: %d ok, %d aborted\n", f.CoAlloc.CoAllocN, f.CoAlloc.AbortN)
}
