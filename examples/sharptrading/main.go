// sharptrading extends the paper's Figure 2 into a small resource
// economy: three sites issue tickets to two competing SHARP agents (one
// conservative, one overselling 2x), service managers buy and redeem, and
// the run prints where the soft-claim conflicts land — the behaviour E9
// sweeps, shown here as a narrated scenario.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/capability"
	"repro/internal/identity"
	"repro/internal/metrics"
	"repro/internal/sharp"
	"repro/internal/sim"
)

func main() {
	// One explicit seed drives the engine and every principal's key
	// stream: rerun with the same -seed for a byte-identical economy
	// (the determinism contract gridlint enforces — no global math/rand).
	seed := flag.Int64("seed", 11, "deterministic run seed for engine and rand streams")
	flag.Parse()
	eng := sim.NewEngine(*seed)
	rng := rand.New(rand.NewSource(*seed))
	horizon := 4 * time.Hour

	// Three sites with 8 CPUs each; siteC oversells 2x.
	sites := map[string]*sharp.Authority{}
	for _, s := range []struct {
		name     string
		oversell float64
	}{{"siteA", 1}, {"siteB", 1}, {"siteC", 2}} {
		nm := capability.NewNodeManager(s.name, eng, rng,
			map[capability.ResourceType]float64{capability.CPU: 8})
		auth := sharp.NewAuthority(eng, s.name, identity.NewPrincipal("auth@"+s.name, rng), nm,
			map[capability.ResourceType]float64{capability.CPU: 8})
		auth.OversellFactor = s.oversell
		sites[s.name] = auth
	}

	// Two agents stock up from every site.
	agents := []*sharp.Agent{
		sharp.NewAgent(identity.NewPrincipal("agent-frugal", rng)),
		sharp.NewAgent(identity.NewPrincipal("agent-greedy", rng)),
	}
	for _, name := range []string{"siteA", "siteB", "siteC"} {
		auth := sites[name]
		for _, ag := range agents {
			// Each agent asks for 6 CPU per site; conservative sites can
			// satisfy only the first fully (8 total), the overseller both.
			for _, chunk := range []float64{4, 2} {
				tk, err := auth.IssueTicket(ag.Name, ag.Key(), capability.CPU, chunk, 0, horizon)
				if err != nil {
					fmt.Printf("  %s refuses %s %.0f cpu: %v\n", name, ag.Name, chunk, err)
					continue
				}
				if err := ag.Acquire(tk); err != nil {
					panic(err)
				}
			}
		}
	}
	fmt.Println()
	inv := metrics.NewTable("agent", "siteA stock", "siteB stock", "siteC stock")
	for _, ag := range agents {
		inv.AddRow(ag.Name,
			ag.Inventory("siteA", capability.CPU),
			ag.Inventory("siteB", capability.CPU),
			ag.Inventory("siteC", capability.CPU))
	}
	inv.Render(os.Stdout)
	fmt.Println()

	// Six service managers each buy 3 CPU at one site, round-robin over
	// agents and sites, then redeem immediately.
	outcome := metrics.NewTable("service manager", "agent", "site", "bought", "redeem")
	siteNames := []string{"siteA", "siteB", "siteC"}
	for i := 0; i < 6; i++ {
		sm := identity.NewPrincipal(fmt.Sprintf("sm-%d", i), rng)
		ag := agents[i%2]
		site := siteNames[i%3]
		tickets, err := ag.Sell(sm.Name, sm.Public(), site, capability.CPU, 3, 0, horizon)
		if err != nil {
			outcome.AddRow(sm.Name, ag.Name, site, "-", "no stock: "+trim(err))
			continue
		}
		status := "lease granted"
		for _, tk := range tickets {
			if _, err := sites[site].Redeem(tk); err != nil {
				status = "CONFLICT: " + trim(err)
			}
		}
		outcome.AddRow(sm.Name, ag.Name, site, 3, status)
	}
	outcome.Render(os.Stdout)

	fmt.Println()
	tally := metrics.NewTable("site", "issued", "redeemed ok", "conflicts")
	for _, name := range siteNames {
		a := sites[name]
		tally.AddRow(name, a.IssuedN, a.RedeemOK, a.RedeemConflict)
	}
	tally.Render(os.Stdout)
	fmt.Println("\nNote how siteC (oversell 2x) accepted every ticket request but")
	fmt.Println("pushed the scarcity to redeem time — tickets are soft claims.")
}

func trim(err error) string {
	s := err.Error()
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
