// datagrid walks the paper's §5 cooperation scenario end to end: a
// climate dataset is registered in a Giggle-style replica catalog, a
// GSI-authorized GridFTP transfer fetches it striped over a lossy WAN,
// and a PlanetLab overlay service (mTCP-style path selection + multipath
// pooling) is layered underneath to lift the throughput — "layering
// Globus on top of PlanetLab can significantly strengthen the data grid
// infrastructure."
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/datagrid"
	"repro/internal/gsi"
	"repro/internal/identity"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simnet"
)

const fileBytes = 500e6 // a 500 MB climate-model output file

func buildWAN() (*sim.Engine, *simnet.Network) {
	eng := sim.NewEngine(23)
	net := simnet.New(eng)
	net.AddSite("NCAR", 0, 0)
	net.AddSite("CERN", 90, 0)
	net.AddSite("pl-princeton", 30, 20)
	net.AddSite("pl-cambridge", 70, 18)
	net.AddHost("storage.ncar", "NCAR", 1.25e7) // 100 Mb/s
	net.AddHost("compute.cern", "CERN", 1.25e7)
	net.AddHost("relay1", "pl-princeton", 1.25e7) // PlanetLab overlay nodes
	net.AddHost("relay2", "pl-cambridge", 1.25e7)
	net.SetLoss("NCAR", "CERN", 0.01) // congested transatlantic path
	return eng, net
}

func main() {
	eng, net := buildWAN()

	// PKI + site transfer policy (Globus layer).
	rng := eng.ForkRand()
	ca := identity.NewCA("DOEGrids", 1e6*time.Hour, rng)
	aliceP := identity.NewPrincipal("/O=Grid/CN=alice", rng)
	alice := identity.UserCredential(aliceP, ca.IssueUser(aliceP, 0, 1e5*time.Hour))
	gm := gsi.NewGridmap()
	gm.Map("/O=Grid/CN=alice", "climate001")
	svc := &datagrid.TransferService{
		Net:    net,
		Policy: &gsi.SitePolicy{Auth: &gsi.ChainAuthenticator{Verifier: identity.NewVerifier(ca)}, Gridmap: gm},
	}

	// Replica catalog: the dataset lives at NCAR.
	lrc := datagrid.NewLRC("NCAR")
	lrc.Register("lfn://esg/climate/run42", datagrid.Replica{Host: "storage.ncar", Bytes: fileBytes})
	rli := datagrid.NewRLI()
	rli.Attach(lrc)
	reps, err := rli.Locate("lfn://esg/climate/run42")
	if err != nil {
		panic(err)
	}
	fmt.Printf("replica catalog: lfn://esg/climate/run42 -> %s (%.0f MB)\n\n", reps[0].Host, reps[0].Bytes/1e6)

	// The overlay's view of candidate paths.
	fmt.Println("overlay path estimates (storage.ncar -> compute.cern):")
	est := metrics.NewTable("path", "rtt", "loss", "predicted MB/s")
	for _, p := range datagrid.BestPaths(net, "storage.ncar", "compute.cern", []string{"relay1", "relay2"}, 3) {
		name := "direct"
		if len(p.Relays) > 0 {
			name = "via " + p.Relays[0]
		}
		est.AddRow(name, p.RTT.Round(time.Millisecond).String(), p.Loss, p.RateBps/1e6)
	}
	est.Render(os.Stdout)
	fmt.Println()

	// Three configurations of the same fetch.
	results := metrics.NewTable("configuration", "duration", "throughput MB/s")
	run := func(name string, opts datagrid.TransferOpts) {
		e2, n2 := buildWAN()
		svc2 := &datagrid.TransferService{Net: n2, Policy: svc.Policy}
		var flow *simnet.Flow
		svc2.Transfer(alice, "storage.ncar", "compute.cern", fileBytes, opts, func(f *simnet.Flow, err error) {
			if err != nil {
				panic(err)
			}
			flow = f
		})
		e2.Run()
		results.AddRow(name, flow.Duration().Round(time.Second).String(), flow.ThroughputBps()/1e6)
	}
	run("single stream, direct", datagrid.TransferOpts{Streams: 1})
	run("striped x8, direct", datagrid.TransferOpts{Streams: 8})
	run("striped x8 + overlay multipath", datagrid.TransferOpts{Streams: 8, Relays: []string{"relay1", "relay2"}})
	results.Render(os.Stdout)
	fmt.Println("\nShape check (paper §5): striping beats single-stream on the lossy")
	fmt.Println("path, and the PlanetLab overlay lifts it further.")
}
